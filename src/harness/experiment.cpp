#include "harness/experiment.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fl::harness {

RunResult run_once(const ExperimentSpec& spec, std::uint64_t seed,
                   unsigned run_index, ThreadPool* pool) {
    core::NetworkConfig config = spec.config;
    config.seed = seed;
    if (spec.audit) {
        // The audit accountant observes global order across every component,
        // so audited runs use the serial engine.  Sound by the partition-
        // equivalence contract: the engines are byte-identical.
        config.partition = {};
    }
    core::FabricNetwork net(config);

    RunResult result;
    net.set_tx_sink([&result, &spec, &net](const client::TxRecord& r) {
        result.metrics.record(r);
        if (spec.tx_probe) spec.tx_probe(r, net, result.extra);
    });

    // Attach the audit before any traffic: it is purely observational (no
    // events scheduled, no rng draws), so results are identical either way.
    std::unique_ptr<obs::audit::AuditAccountant> audit;
    if (spec.audit) {
        obs::audit::AuditConfig audit_cfg = *spec.audit;
        if (audit_cfg.level_weights.empty()) {
            audit_cfg.level_weights = config.channel.priority_enabled
                                          ? config.channel.block_policy.fractions()
                                          : std::vector<double>{1.0};
        }
        audit = std::make_unique<obs::audit::AuditAccountant>(std::move(audit_cfg));
        net.set_audit(audit.get());
    }

    Workload workload = spec.make_workload();
    WorkloadDriver driver(net, std::move(workload), Rng(seed ^ 0x574B4C44ull));
    driver.start();
    // Instrument after the workload is scheduled: a sampling recorder armed
    // against an empty event queue would never fire (it only re-arms while
    // other events are pending, so the sim can drain).
    if (spec.instrument) spec.instrument(net, run_index);
    net.run(pool);

    if (audit) {
        audit->finalize(net.simulator().now());
        result.audit = audit->report();
    }

    result.chains_identical = net.chains_identical();
    result.states_identical = net.states_identical();
    result.osn_blocks_identical = net.osn_blocks_identical();
    result.blocks = net.peers().front()->chain().height();
    result.txs_invalid = net.peers().front()->txs_invalid();
    for (const auto& osn : net.osns()) {
        result.consolidation_failures += osn->consolidation_failures();
    }
    result.level_totals = net.osns().front()->level_totals();
    if (spec.run_probe) spec.run_probe(net, result.extra);
    return result;
}

RunResult run_once(core::NetworkConfig config,
                   const std::function<Workload()>& make_workload,
                   std::uint64_t seed) {
    ExperimentSpec spec;
    spec.config = std::move(config);
    spec.make_workload = make_workload;
    return run_once(spec, seed);
}

AggregateResult run_experiment(const ExperimentSpec& spec) {
    if (!spec.make_workload) {
        throw std::invalid_argument("run_experiment: no workload factory");
    }
    if (spec.runs == 0) {
        throw std::invalid_argument("run_experiment: runs must be >= 1");
    }
    AggregateResult agg;
    for (unsigned run = 0; run < spec.runs; ++run) {
        const RunResult r = run_once(spec, spec.base_seed + run, run);

        agg.overall_latency.add_run(r.metrics.avg_latency());
        agg.throughput_tps.add_run(r.metrics.throughput_tps());
        agg.blocks_per_run.add_run(static_cast<double>(r.blocks));
        for (const auto& [level, hist] : r.metrics.by_priority()) {
            agg.latency_by_priority[level].add_run(hist.mean());
        }
        for (const auto& [cid, hist] : r.metrics.by_client()) {
            agg.latency_by_client[cid.value()].add_run(hist.mean());
        }
        for (const auto& [level, phases] : r.metrics.phases_by_priority()) {
            PhaseAggregate& pa = agg.phases_by_priority[level];
            pa.endorsement.add_run(phases.endorsement.mean());
            pa.ordering.add_run(phases.ordering.mean());
            pa.validation.add_run(phases.validation.mean());
            pa.notification.add_run(phases.notification.mean());
        }
        for (const auto& [key, value] : r.extra) {
            agg.extra[key].add_run(value);
        }
        agg.total_committed += r.metrics.committed_valid();
        agg.total_invalid += r.metrics.committed_invalid();
        agg.total_client_failures += r.metrics.client_failures();
        agg.total_consolidation_failures += r.consolidation_failures;
        agg.all_consistent = agg.all_consistent && r.chains_identical &&
                             r.states_identical && r.osn_blocks_identical;
        if (r.audit) agg.audit_reports.push_back(*r.audit);
        if (spec.keep_run_metrics) {
            std::ostringstream os;
            core::write_metrics_json(os, r.metrics,
                                     r.audit ? &*r.audit : nullptr);
            agg.run_metrics_json.push_back(os.str());
        }
    }
    return agg;
}

double AggregateResult::extra_mean(const std::string& key) const {
    const auto it = extra.find(key);
    return it == extra.end() ? 0.0 : it->second.mean();
}

double AggregateResult::extra_total(const std::string& key) const {
    const auto it = extra.find(key);
    if (it == extra.end()) return 0.0;
    return it->second.mean() * static_cast<double>(it->second.runs());
}

namespace {
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    return std::strtoull(raw, nullptr, 10);
}
}  // namespace

unsigned runs_from_env(unsigned default_runs) {
    return static_cast<unsigned>(env_u64("FAIRLEDGER_RUNS", default_runs));
}

std::uint64_t total_txs_from_env(std::uint64_t default_total) {
    return env_u64("FAIRLEDGER_TOTAL_TXS", default_total);
}

}  // namespace fl::harness
