#include "harness/experiment.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fl::harness {

RunResult run_once(core::NetworkConfig config,
                   const std::function<Workload()>& make_workload,
                   std::uint64_t seed) {
    config.seed = seed;
    core::FabricNetwork net(config);

    RunResult result;
    net.set_tx_sink([&result](const client::TxRecord& r) { result.metrics.record(r); });

    Workload workload = make_workload();
    WorkloadDriver driver(net, std::move(workload), Rng(seed ^ 0x574B4C44ull));
    driver.start();
    net.run();

    result.chains_identical = net.chains_identical();
    result.states_identical = net.states_identical();
    result.osn_blocks_identical = net.osn_blocks_identical();
    result.blocks = net.peers().front()->chain().height();
    result.txs_invalid = net.peers().front()->txs_invalid();
    for (const auto& osn : net.osns()) {
        result.consolidation_failures += osn->consolidation_failures();
    }
    result.level_totals = net.osns().front()->level_totals();
    return result;
}

AggregateResult run_experiment(const ExperimentSpec& spec) {
    if (!spec.make_workload) {
        throw std::invalid_argument("run_experiment: no workload factory");
    }
    if (spec.runs == 0) {
        throw std::invalid_argument("run_experiment: runs must be >= 1");
    }
    AggregateResult agg;
    for (unsigned run = 0; run < spec.runs; ++run) {
        const RunResult r =
            run_once(spec.config, spec.make_workload, spec.base_seed + run);

        agg.overall_latency.add_run(r.metrics.avg_latency());
        agg.throughput_tps.add_run(r.metrics.throughput_tps());
        for (const auto& [level, hist] : r.metrics.by_priority()) {
            agg.latency_by_priority[level].add_run(hist.mean());
        }
        for (const auto& [cid, hist] : r.metrics.by_client()) {
            agg.latency_by_client[cid.value()].add_run(hist.mean());
        }
        agg.total_committed += r.metrics.committed_valid();
        agg.total_invalid += r.metrics.committed_invalid();
        agg.total_client_failures += r.metrics.client_failures();
        agg.all_consistent = agg.all_consistent && r.chains_identical &&
                             r.states_identical && r.osn_blocks_identical;
    }
    return agg;
}

namespace {
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    return std::strtoull(raw, nullptr, 10);
}
}  // namespace

unsigned runs_from_env(unsigned default_runs) {
    return static_cast<unsigned>(env_u64("FAIRLEDGER_RUNS", default_runs));
}

std::uint64_t total_txs_from_env(std::uint64_t default_total) {
    return env_u64("FAIRLEDGER_TOTAL_TXS", default_total);
}

}  // namespace fl::harness
