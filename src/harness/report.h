// Fixed-width table printer for benchmark reports — mirrors the series the
// paper plots so outputs can be compared against the figures at a glance.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace fl::harness {

class Table {
public:
    explicit Table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /// Renders with column alignment and a header separator.
    void print(std::ostream& os) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// "1.234" style formatting of a ratio/latency.
[[nodiscard]] std::string fmt(double v, int decimals = 3);

/// Banner printed above each experiment's output.
void print_banner(std::ostream& os, const std::string& title,
                  const std::string& subtitle);

/// One-line sweep summary: points, worker threads, wall-clock.  Goes to
/// stdout only — wall-clock must never leak into the deterministic JSON.
void print_sweep_footer(std::ostream& os, std::size_t points,
                        unsigned threads, double wall_seconds);

}  // namespace fl::harness
