// Workload generation — the Hyperledger Caliper stand-in.
//
// Open-loop load: each LoadSpec drives one client at a target rate
// (deterministic or Poisson inter-arrivals) with a pluggable transaction
// generator.  The stock generators mirror the paper's workloads:
//
//   * priority_class_mix — transactions spread over the three stock
//     chaincodes whose deploy-time static priorities are high/medium/low,
//     in a configurable arrival ratio (the paper's 1:2:1 default);
//   * single_chaincode   — all load on one contract (Figure 6 uses
//     record_keeper for every client so only *who floods* differs);
//   * contended_transfers — asset transfers over a small hot-account set,
//     used to exercise the prioritized validator's conflict resolution;
//   * zipfian_transfers  — asset transfers over a huge (millions-wide)
//     account space with Zipf-skewed popularity, the YCSB access pattern
//     the scale harness (bench/scale_state) drives against the sharded
//     world state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fabric_network.h"

namespace fl::harness {

/// Produces one transaction submission on `client`.
using TxGenerator = std::function<void(client::Client&, Rng&)>;

struct LoadSpec {
    std::size_t client_index = 0;  ///< index into FabricNetwork::clients()
    double tps = 100.0;
    std::uint64_t total_txs = 0;   ///< how many this load submits
    TxGenerator generate;
};

struct Workload {
    std::vector<LoadSpec> loads;
    bool poisson = true;  ///< exponential vs deterministic inter-arrivals

    /// Splits `total` transactions over the loads proportionally to tps.
    void distribute_total(std::uint64_t total);
};

/// Schedules all loads onto the network.  Each load's arrival events run on
/// its client's simulator under the client's scheduling domain, so the
/// driver works unchanged — and byte-identically — on the partitioned
/// engine (per-load state is only ever touched from that client's group).
/// Keep alive until the simulation finishes.
class WorkloadDriver {
public:
    WorkloadDriver(core::FabricNetwork& net, Workload workload, Rng rng);

    /// Begins submission at simulation time now.
    void start();

    [[nodiscard]] std::uint64_t submitted() const;

private:
    void schedule_next(std::size_t load_index);

    core::FabricNetwork& net_;
    Workload workload_;
    std::vector<Rng> load_rngs_;
    std::vector<std::uint64_t> remaining_;
    /// Per-load so concurrent groups never share a counter.
    std::vector<std::uint64_t> submitted_;
};

// -- stock transaction generators -------------------------------------------

/// Unique-key transaction on the chaincode of priority class `level`
/// (0 -> asset_transfer, 1 -> supply_chain, 2 -> record_keeper).
[[nodiscard]] TxGenerator class_tx_generator(PriorityLevel level);

/// Mixes the class generators with the given arrival weights
/// (e.g. {1, 2, 1} for the paper's high:med:low = 1:2:1 ratio).
[[nodiscard]] TxGenerator priority_class_mix(std::vector<double> weights);

/// Every transaction hits `chaincode` with unique keys (non-conflicting).
[[nodiscard]] TxGenerator single_chaincode(std::string chaincode);

/// Asset transfers over `hot_accounts` pre-seeded accounts — conflict-prone.
/// Accounts must be seeded via seed_hot_accounts() before traffic.
[[nodiscard]] TxGenerator contended_transfers(std::uint32_t hot_accounts);

/// Seeds the hot accounts used by contended_transfers on every peer.
void seed_hot_accounts(core::FabricNetwork& net, std::uint32_t hot_accounts,
                       long long initial_balance = 1'000'000);

// -- Zipfian scale workload -------------------------------------------------

/// Zipf(theta)-distributed sampler over [0, n), YCSB's "ZipfianGenerator"
/// construction (Gray et al.'s rejection-free inverse-CDF approximation):
/// rank r is drawn with probability ∝ 1/(r+1)^theta, then scrambled through
/// a stable FNV-1a hash so the popular ranks land on unrelated indices (and
/// therefore unrelated world-state shards).  theta = 0 degenerates to the
/// uniform distribution; theta must be < 1 (the harmonic normalization
/// diverges at 1).  Deterministic: same (n, theta, rng state) ⇒ same draws.
class ZipfSampler {
public:
    ZipfSampler(std::uint64_t n, double theta);

    /// Scrambled index in [0, n).
    [[nodiscard]] std::uint64_t next(Rng& rng);

    /// Popularity rank in [0, n): 0 is the hottest, 1 the next, ...
    /// (pre-scramble; exposed for tests pinning the skew itself).
    [[nodiscard]] std::uint64_t next_rank(Rng& rng);

    [[nodiscard]] std::uint64_t size() const { return n_; }
    [[nodiscard]] double theta() const { return theta_; }

    /// The stable rank→index permutation-ish scramble (FNV-1a mod n; rank
    /// collisions are acceptable and inherent to YCSB's construction).
    [[nodiscard]] std::uint64_t scramble(std::uint64_t rank) const;

private:
    std::uint64_t n_;
    double theta_;
    double zetan_;   ///< generalized harmonic H_{n,theta}
    double zeta2_;   ///< H_{2,theta}
    double alpha_;
    double eta_;
};

/// Canonical account name for index i of the scale account space ("u<i>";
/// full state key is "acct/u<i>").
[[nodiscard]] std::string scale_account_name(std::uint64_t index);

/// Asset transfers over `accounts` pre-seeded accounts with Zipf(theta)
/// popularity.  A `mint_fraction` slice of traffic instead mints (creates or
/// tops up) the sampled account — single-key write traffic that exercises
/// the create-or-top-up path against the sharded store.  Accounts must be
/// seeded via seed_scale_accounts() before traffic.
[[nodiscard]] TxGenerator zipfian_transfers(std::uint64_t accounts, double theta,
                                            double mint_fraction = 0.0);

/// Seeds the `accounts`-wide scale account space on every peer (version
/// {0,0} bootstrap writes, bypassing the pipeline — this is the "million
/// account" world-state population step, so it is deliberately not traffic).
void seed_scale_accounts(core::FabricNetwork& net, std::uint64_t accounts,
                         long long initial_balance = 1'000);

}  // namespace fl::harness
