// Workload generation — the Hyperledger Caliper stand-in.
//
// Open-loop load: each LoadSpec drives one client at a target rate
// (deterministic or Poisson inter-arrivals) with a pluggable transaction
// generator.  The stock generators mirror the paper's workloads:
//
//   * priority_class_mix — transactions spread over the three stock
//     chaincodes whose deploy-time static priorities are high/medium/low,
//     in a configurable arrival ratio (the paper's 1:2:1 default);
//   * single_chaincode   — all load on one contract (Figure 6 uses
//     record_keeper for every client so only *who floods* differs);
//   * contended_transfers — asset transfers over a small hot-account set,
//     used to exercise the prioritized validator's conflict resolution.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fabric_network.h"

namespace fl::harness {

/// Produces one transaction submission on `client`.
using TxGenerator = std::function<void(client::Client&, Rng&)>;

struct LoadSpec {
    std::size_t client_index = 0;  ///< index into FabricNetwork::clients()
    double tps = 100.0;
    std::uint64_t total_txs = 0;   ///< how many this load submits
    TxGenerator generate;
};

struct Workload {
    std::vector<LoadSpec> loads;
    bool poisson = true;  ///< exponential vs deterministic inter-arrivals

    /// Splits `total` transactions over the loads proportionally to tps.
    void distribute_total(std::uint64_t total);
};

/// Schedules all loads onto the network's simulator.  Keep alive until the
/// simulation finishes.
class WorkloadDriver {
public:
    WorkloadDriver(core::FabricNetwork& net, Workload workload, Rng rng);

    /// Begins submission at simulation time now.
    void start();

    [[nodiscard]] std::uint64_t submitted() const { return submitted_; }

private:
    void schedule_next(std::size_t load_index);

    core::FabricNetwork& net_;
    Workload workload_;
    std::vector<Rng> load_rngs_;
    std::vector<std::uint64_t> remaining_;
    std::uint64_t submitted_ = 0;
};

// -- stock transaction generators -------------------------------------------

/// Unique-key transaction on the chaincode of priority class `level`
/// (0 -> asset_transfer, 1 -> supply_chain, 2 -> record_keeper).
[[nodiscard]] TxGenerator class_tx_generator(PriorityLevel level);

/// Mixes the class generators with the given arrival weights
/// (e.g. {1, 2, 1} for the paper's high:med:low = 1:2:1 ratio).
[[nodiscard]] TxGenerator priority_class_mix(std::vector<double> weights);

/// Every transaction hits `chaincode` with unique keys (non-conflicting).
[[nodiscard]] TxGenerator single_chaincode(std::string chaincode);

/// Asset transfers over `hot_accounts` pre-seeded accounts — conflict-prone.
/// Accounts must be seeded via seed_hot_accounts() before traffic.
[[nodiscard]] TxGenerator contended_transfers(std::uint32_t hot_accounts);

/// Seeds the hot accounts used by contended_transfers on every peer.
void seed_hot_accounts(core::FabricNetwork& net, std::uint32_t hot_accounts,
                       long long initial_balance = 1'000'000);

}  // namespace fl::harness
