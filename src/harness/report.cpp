#include "harness/report.h"

#include <algorithm>

#include "common/stats.h"

namespace fl::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
        widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            widths[i] = std::max(widths[i], row[i].size());
        }
    }
    const auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << (i == 0 ? "| " : " | ");
            os << cells[i];
            os << std::string(widths[i] - cells[i].size(), ' ');
        }
        os << " |\n";
    };
    print_row(headers_);
    os << "|";
    for (const std::size_t w : widths) {
        os << std::string(w + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_) {
        print_row(row);
    }
}

std::string fmt(double v, int decimals) {
    return format_fixed(v, decimals);
}

void print_sweep_footer(std::ostream& os, std::size_t points,
                        unsigned threads, double wall_seconds) {
    os << "[" << points << " sweep points on " << threads << " thread"
       << (threads == 1 ? "" : "s") << ", " << fmt(wall_seconds, 1)
       << " s wall-clock]\n";
}

void print_banner(std::ostream& os, const std::string& title,
                  const std::string& subtitle) {
    os << "\n=== " << title << " ===\n";
    if (!subtitle.empty()) {
        os << subtitle << "\n";
    }
    os << "\n";
}

}  // namespace fl::harness
