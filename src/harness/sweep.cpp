#include "harness/sweep.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <ostream>
#include <stdexcept>

#include "common/json.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace fl::harness {

std::uint64_t point_seed(std::uint64_t base_seed, std::uint64_t group) {
    return derive_seed(base_seed, group);
}

std::vector<PointResult> run_sweep(const SweepSpec& spec) {
    for (const auto& point : spec.points) {
        if (!point.spec.make_workload) {
            throw std::invalid_argument("run_sweep: point '" + point.label +
                                        "' has no workload factory");
        }
    }
    std::vector<PointResult> results(spec.points.size());
    ThreadPool pool(spec.threads);
    parallel_for_each(pool, spec.points.size(), [&](std::size_t i) {
        const ExperimentPoint& point = spec.points[i];
        ExperimentSpec run_spec = point.spec;
        const std::uint64_t group =
            point.seed_group ? *point.seed_group : static_cast<std::uint64_t>(i);
        run_spec.base_seed = point_seed(spec.base_seed, group);

        // Points asking for parallel validation without their own pool borrow
        // the sweep's.  Safe even though this worker is itself a pool task:
        // parallel_for_each supports nested fork-join (common/thread_pool.h),
        // and the validator's outcome is pool-size independent by design.
        peer::PeerParams& pp = run_spec.config.peer_params;
        if (pp.validation_mode == peer::ValidationMode::kParallel &&
            pp.validation_pool == nullptr) {
            pp.validation_pool = &pool;
        }

        PointResult& out = results[i];  // pre-sized slot: order == point order
        out.index = i;
        out.label = point.label;
        out.params = point.params;
        out.seed = run_spec.base_seed;
        out.result = run_experiment(run_spec);
    });
    return results;
}

namespace {

void write_aggregator(JsonWriter& json, const RunAggregator& agg) {
    json.begin_object();
    json.field("mean", agg.mean());
    json.field("ci95", agg.ci95_half_width());
    json.field("runs", agg.runs());
    json.end_object();
}

void write_point(JsonWriter& json, const PointResult& point) {
    json.begin_object();
    json.field("index", static_cast<std::uint64_t>(point.index));
    json.field("label", point.label);
    json.key("params");
    json.begin_object();
    for (const auto& [name, value] : point.params) {
        json.field(name, value);
    }
    json.end_object();
    json.field("seed", point.seed);

    const AggregateResult& r = point.result;
    json.key("avg_latency_s");
    write_aggregator(json, r.overall_latency);
    json.key("throughput_tps");
    write_aggregator(json, r.throughput_tps);
    json.key("blocks_per_run");
    write_aggregator(json, r.blocks_per_run);

    json.key("latency_by_priority_s");
    json.begin_object();
    for (const auto& [level, agg] : r.latency_by_priority) {
        json.key(level == kUnassignedPriority ? "unassigned"
                                              : std::to_string(level));
        write_aggregator(json, agg);
    }
    json.end_object();

    json.key("latency_by_client_s");
    json.begin_object();
    for (const auto& [client, agg] : r.latency_by_client) {
        json.key(std::to_string(client));
        write_aggregator(json, agg);
    }
    json.end_object();

    json.key("phase_means_by_priority_s");
    json.begin_object();
    for (const auto& [level, phases] : r.phases_by_priority) {
        json.key(level == kUnassignedPriority ? "unassigned"
                                              : std::to_string(level));
        json.begin_object();
        json.field("endorsement", phases.endorsement.mean());
        json.field("ordering", phases.ordering.mean());
        json.field("validation", phases.validation.mean());
        json.field("notification", phases.notification.mean());
        json.end_object();
    }
    json.end_object();

    json.field("total_committed", r.total_committed);
    json.field("total_invalid", r.total_invalid);
    json.field("total_client_failures", r.total_client_failures);
    json.field("total_consolidation_failures", r.total_consolidation_failures);
    json.field("all_consistent", r.all_consistent);

    if (!r.extra.empty()) {
        json.key("extra");
        json.begin_object();
        for (const auto& [name, agg] : r.extra) {
            json.key(name);
            write_aggregator(json, agg);
        }
        json.end_object();
    }
    if (!r.run_metrics_json.empty()) {
        // Pre-rendered by core::write_metrics_json; splice verbatim so the
        // per-run dump matches what a single run would emit.
        json.key("runs_detail");
        json.begin_array();
        for (const auto& dump : r.run_metrics_json) {
            json.raw(dump);
        }
        json.end_array();
    }
    if (!r.audit_reports.empty()) {
        json.key("audit_runs");
        json.begin_array();
        for (const auto& report : r.audit_reports) {
            obs::audit::write_audit_json(json, report);
        }
        json.end_array();
    }
    json.end_object();
}

}  // namespace

void write_sweep_json(std::ostream& os, const SweepSpec& spec,
                      const std::vector<PointResult>& results) {
    JsonWriter json(os);
    json.begin_object();
    json.field("bench", spec.name);
    json.field("base_seed", spec.base_seed);
    json.field("points", static_cast<std::uint64_t>(results.size()));
    json.key("results");
    json.begin_array();
    for (const auto& point : results) {
        write_point(json, point);
    }
    json.end_array();
    json.end_object();
    os << "\n";
}

namespace {

[[noreturn]] void usage(const std::string& bench_name, int exit_code,
                        const std::vector<BenchFlag*>& extra = {}) {
    std::ostream& os = exit_code == 0 ? std::cout : std::cerr;
    os << "usage: " << bench_name << " [options]\n";
    for (const BenchFlag* flag : extra) {
        os << "  " << flag->name << " N   " << flag->help
           << " (default: " << flag->value << ")\n";
    }
    os
       << "  --threads N   worker threads for the sweep "
          "(default: hardware concurrency)\n"
       << "  --seed S      base seed; every point's seed derives from it "
          "(deterministic)\n"
       << "  --runs R      repetitions per point (default: FAIRLEDGER_RUNS "
          "or the bench default)\n"
       << "  --txs T       transactions per run (default: "
          "FAIRLEDGER_TOTAL_TXS or the bench default)\n"
       << "  --json PATH   per-point JSON output path "
          "(default: BENCH_local_" << bench_name << ".json)\n"
       << "  --no-json     disable the JSON output\n"
       << "  --trace PATH  capture a per-transaction lifecycle trace of one "
          "run\n"
       << "                (Chrome trace-event JSON for Perfetto; compact "
          "JSONL when\n"
       << "                PATH ends in .jsonl)\n"
       << "  --timeseries PATH  sample queue/WFQ/validator gauges on a "
          "simulated-time\n"
       << "                cadence into a JSONL file\n"
       << "  --trace-point N  grid point to instrument (default: 0; run 0 "
          "of it)\n"
       << "  --audit       attach the fairness-audit accountant to every "
          "point\n"
       << "  --audit-window MS  audit window in simulated milliseconds "
          "(default: 1000;\n"
       << "                implies nothing by itself — combine with --audit "
          "or a bench\n"
       << "                that pre-configures auditing)\n"
       << "  --log-level L  stderr log level: trace|debug|info|warn|error|off\n"
       << "  --help        this text\n";
    std::exit(exit_code);
}

std::uint64_t parse_u64(const std::string& flag, const char* raw,
                        const std::string& bench_name,
                        const std::vector<BenchFlag*>& extra = {}) {
    if (raw == nullptr || *raw == '\0') {
        std::cerr << flag << ": missing value\n";
        usage(bench_name, 2, extra);
    }
    const std::optional<std::uint64_t> v = parse_cli_u64(raw);
    if (!v) {
        std::cerr << flag << ": not a non-negative integer: " << raw << "\n";
        usage(bench_name, 2, extra);
    }
    return *v;
}

/// For counts that must be >= 1 (--threads/--runs/--txs): zero — including
/// a "-1" the old strtoull parser would have wrapped to huge — is an error.
std::uint64_t parse_positive_u64(const std::string& flag, const char* raw,
                                 const std::string& bench_name,
                                 const std::vector<BenchFlag*>& extra = {}) {
    const std::uint64_t v = parse_u64(flag, raw, bench_name, extra);
    if (v == 0) {
        std::cerr << flag << ": must be >= 1\n";
        usage(bench_name, 2, extra);
    }
    return v;
}

}  // namespace

std::optional<std::uint64_t> parse_cli_u64(const char* raw) {
    if (raw == nullptr || *raw == '\0') return std::nullopt;
    // Digits only: strtoull would silently accept "-1" (wrapping to 2^64-1),
    // "0x10", leading whitespace and "12abc" prefixes.
    for (const char* p = raw; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9') return std::nullopt;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (errno == ERANGE || end == raw || *end != '\0') return std::nullopt;
    return static_cast<std::uint64_t>(v);
}

SweepCli parse_sweep_cli(int argc, char** argv, std::uint64_t default_seed,
                         const std::string& bench_name) {
    return parse_sweep_cli(argc, argv, default_seed, bench_name, {});
}

SweepCli parse_sweep_cli(int argc, char** argv, std::uint64_t default_seed,
                         const std::string& bench_name,
                         const std::vector<BenchFlag*>& extra) {
    SweepCli cli;
    cli.base_seed = default_seed;
    cli.json_path = "BENCH_local_" + bench_name + ".json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--help" || arg == "-h") {
            usage(bench_name, 0, extra);
        } else if (arg == "--threads") {
            cli.threads = static_cast<unsigned>(
                parse_positive_u64(arg, next(), bench_name, extra));
        } else if (arg == "--seed") {
            cli.base_seed = parse_u64(arg, next(), bench_name, extra);
        } else if (arg == "--runs") {
            cli.runs = static_cast<unsigned>(
                parse_positive_u64(arg, next(), bench_name, extra));
        } else if (arg == "--txs") {
            cli.total_txs = parse_positive_u64(arg, next(), bench_name, extra);
        } else if (arg == "--json") {
            const char* path = next();
            if (path == nullptr) {
                std::cerr << "--json: missing path\n";
                usage(bench_name, 2, extra);
            }
            cli.json_path = path;
        } else if (arg == "--no-json") {
            cli.json_enabled = false;
        } else if (arg == "--trace") {
            const char* path = next();
            if (path == nullptr || *path == '\0') {
                std::cerr << "--trace: missing path\n";
                usage(bench_name, 2, extra);
            }
            cli.trace_path = path;
        } else if (arg == "--timeseries") {
            const char* path = next();
            if (path == nullptr || *path == '\0') {
                std::cerr << "--timeseries: missing path\n";
                usage(bench_name, 2, extra);
            }
            cli.timeseries_path = path;
        } else if (arg == "--audit") {
            cli.audit = true;
        } else if (arg == "--audit-window") {
            cli.audit_window_ms =
                parse_positive_u64(arg, next(), bench_name, extra);
            cli.audit_window_seen = true;
        } else if (arg == "--trace-point") {
            cli.trace_point = static_cast<std::size_t>(
                parse_u64(arg, next(), bench_name, extra));
        } else if (arg == "--log-level") {
            const char* name = next();
            if (name == nullptr || *name == '\0') {
                std::cerr << "--log-level: missing value\n";
                usage(bench_name, 2, extra);
            }
            const std::optional<LogLevel> level = parse_log_level(name);
            if (!level) {
                std::cerr << "--log-level: unknown level '" << name
                          << "' (expected trace|debug|info|warn|error|off)\n";
                usage(bench_name, 2, extra);
            }
            set_log_level(*level);
        } else {
            BenchFlag* matched = nullptr;
            for (BenchFlag* flag : extra) {
                if (arg == flag->name) {
                    matched = flag;
                    break;
                }
            }
            if (matched == nullptr) {
                std::cerr << "unknown option: " << arg << "\n";
                usage(bench_name, 2, extra);
            }
            const std::uint64_t v =
                matched->positive
                    ? parse_positive_u64(arg, next(), bench_name, extra)
                    : parse_u64(arg, next(), bench_name, extra);
            if (v > matched->max) {
                std::cerr << arg << ": must be <= " << matched->max << "\n";
                usage(bench_name, 2, extra);
            }
            matched->value = v;
            matched->seen = true;
        }
    }
    return cli;
}

void apply_audit_cli(SweepSpec& spec, const SweepCli& cli) {
    if (!cli.audit && !cli.audit_window_seen) return;
    for (ExperimentPoint& point : spec.points) {
        if (cli.audit && !point.spec.audit) {
            point.spec.audit = cli.audit_config();
        } else if (cli.audit_window_seen && point.spec.audit) {
            point.spec.audit->window =
                Duration::millis(static_cast<std::int64_t>(cli.audit_window_ms));
        }
    }
}

bool emit_sweep_json(const SweepCli& cli, const SweepSpec& spec,
                     const std::vector<PointResult>& results,
                     std::ostream& status) {
    if (!cli.json_enabled) return false;
    std::ofstream file(cli.json_path);
    if (!file) {
        status << "WARNING: cannot open JSON output path " << cli.json_path
               << "\n";
        return false;
    }
    write_sweep_json(file, spec, results);
    status << "per-point JSON written to " << cli.json_path << "\n";
    return true;
}

void arm_trace_capture(SweepSpec& spec, const SweepCli& cli,
                       TraceCapture& capture, std::ostream& status) {
    const bool want_trace = !cli.trace_path.empty();
    const bool want_series = !cli.timeseries_path.empty();
    if ((!want_trace && !want_series) || spec.points.empty()) return;

    std::size_t idx = cli.trace_point;
    if (idx >= spec.points.size()) {
        status << "WARNING: --trace-point " << idx << " out of range ("
               << spec.points.size() << " points); tracing point 0\n";
        idx = 0;
    }
    status << "instrumenting point " << idx << " ('" << spec.points[idx].label
           << "'), run 0\n";

    // Only run 0 of one point attaches — one network, one worker, so the
    // capture needs no locking and the bytes cannot depend on --threads.
    // An instrument hook the bench already installed (e.g. scale_state's
    // account seeding) keeps running: chain, don't replace.
    spec.points[idx].spec.instrument =
        [&capture, want_trace, want_series,
         prev = std::move(spec.points[idx].spec.instrument)](
            core::FabricNetwork& net, unsigned run) {
            if (prev) prev(net, run);
            if (run != 0) return;
            if (want_trace) net.set_trace_sink(&capture.sink);
            if (want_series) {
                obs::MetricRegistry registry;
                net.register_metrics(registry);
                capture.recorder = std::make_unique<obs::TimeSeriesRecorder>(
                    net.simulator(), std::move(registry), capture.cadence);
                capture.recorder->start();
            }
        };
}

bool emit_trace_files(const SweepCli& cli, const TraceCapture& capture,
                      std::ostream& status) {
    bool wrote = false;
    if (!cli.trace_path.empty()) {
        std::ofstream file(cli.trace_path);
        if (!file) {
            status << "WARNING: cannot open trace output path "
                   << cli.trace_path << "\n";
        } else {
            if (cli.trace_path.size() >= 6 &&
                cli.trace_path.compare(cli.trace_path.size() - 6, 6,
                                       ".jsonl") == 0) {
                capture.sink.write_jsonl(file);
            } else {
                capture.sink.write_chrome_json(file);
            }
            status << "trace (" << capture.sink.size() << " events) written to "
                   << cli.trace_path << "\n";
            wrote = true;
        }
    }
    if (!cli.timeseries_path.empty()) {
        if (!capture.recorder) {
            status << "WARNING: no time-series captured (instrumented run "
                      "never executed?); skipping " << cli.timeseries_path
                   << "\n";
        } else {
            std::ofstream file(cli.timeseries_path);
            if (!file) {
                status << "WARNING: cannot open time-series output path "
                       << cli.timeseries_path << "\n";
            } else {
                capture.recorder->write_jsonl(file);
                status << "time series (" << capture.recorder->samples().size()
                       << " samples) written to " << cli.timeseries_path
                       << "\n";
                wrote = true;
            }
        }
    }
    return wrote;
}

}  // namespace fl::harness
