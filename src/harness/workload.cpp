#include "harness/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fl::harness {

void Workload::distribute_total(std::uint64_t total) {
    double tps_sum = 0.0;
    for (const LoadSpec& load : loads) {
        tps_sum += load.tps;
    }
    if (tps_sum <= 0.0) {
        throw std::invalid_argument("Workload::distribute_total: zero aggregate rate");
    }
    std::uint64_t assigned = 0;
    for (LoadSpec& load : loads) {
        load.total_txs = static_cast<std::uint64_t>(
            std::floor(static_cast<double>(total) * load.tps / tps_sum));
        assigned += load.total_txs;
    }
    // Leftover from flooring goes to the first loads.
    for (std::size_t i = 0; assigned < total; i = (i + 1) % loads.size()) {
        ++loads[i].total_txs;
        ++assigned;
    }
}

WorkloadDriver::WorkloadDriver(core::FabricNetwork& net, Workload workload, Rng rng)
    : net_(net), workload_(std::move(workload)) {
    if (workload_.loads.empty()) {
        throw std::invalid_argument("WorkloadDriver: empty workload");
    }
    for (std::size_t i = 0; i < workload_.loads.size(); ++i) {
        const LoadSpec& load = workload_.loads[i];
        if (!load.generate) {
            throw std::invalid_argument("WorkloadDriver: load without generator");
        }
        if (load.client_index >= net_.clients().size()) {
            throw std::invalid_argument("WorkloadDriver: bad client index");
        }
        if (load.tps <= 0.0) {
            throw std::invalid_argument("WorkloadDriver: non-positive rate");
        }
        load_rngs_.push_back(rng.split("load" + std::to_string(i)));
        remaining_.push_back(load.total_txs);
        submitted_.push_back(0);
    }
}

void WorkloadDriver::start() {
    for (std::size_t i = 0; i < workload_.loads.size(); ++i) {
        if (remaining_[i] > 0) {
            schedule_next(i);
        }
    }
}

std::uint64_t WorkloadDriver::submitted() const {
    std::uint64_t total = 0;
    for (const std::uint64_t s : submitted_) total += s;
    return total;
}

void WorkloadDriver::schedule_next(std::size_t load_index) {
    const LoadSpec& load = workload_.loads[load_index];
    const double mean_gap = 1.0 / load.tps;
    const double gap_s = workload_.poisson
                             ? load_rngs_[load_index].exponential(mean_gap)
                             : mean_gap;
    // Arrivals live on the target client's simulator under its domain:
    // layout-identical event keys, and each load's state (rng, counters) is
    // only ever touched from that client's partition group.
    const client::Client& client = *net_.clients()[load.client_index];
    sim::Simulator& csim = net_.sim_of(client.node());
    sim::DomainScope scope(csim, client.node().value());
    csim.schedule_after(Duration::from_seconds(gap_s), [this, load_index] {
        const LoadSpec& spec = workload_.loads[load_index];
        spec.generate(*net_.clients()[spec.client_index], load_rngs_[load_index]);
        ++submitted_[load_index];
        if (--remaining_[load_index] > 0) {
            schedule_next(load_index);
        }
    });
}

TxGenerator class_tx_generator(PriorityLevel level) {
    auto seq = std::make_shared<std::uint64_t>(0);
    switch (level) {
    case 0:
        return [seq](client::Client& c, Rng&) {
            const std::string key = "hk" + std::to_string(c.id().value()) + "-" +
                                    std::to_string((*seq)++);
            c.submit("asset_transfer", "create", {key, "100"});
        };
    case 1:
        return [seq](client::Client& c, Rng&) {
            const std::string key = "mk" + std::to_string(c.id().value()) + "-" +
                                    std::to_string((*seq)++);
            c.submit("supply_chain", "create_shipment", {key, "factory", "store"});
        };
    default:
        return [seq](client::Client& c, Rng&) {
            const std::string key = "lk" + std::to_string(c.id().value()) + "-" +
                                    std::to_string((*seq)++);
            c.submit("record_keeper", "log", {key, "audit-payload"});
        };
    }
}

TxGenerator priority_class_mix(std::vector<double> weights) {
    if (weights.empty()) {
        throw std::invalid_argument("priority_class_mix: no weights");
    }
    double total = 0.0;
    for (const double w : weights) {
        if (w < 0.0) throw std::invalid_argument("priority_class_mix: negative weight");
        total += w;
    }
    if (total <= 0.0) {
        throw std::invalid_argument("priority_class_mix: zero total weight");
    }
    std::vector<TxGenerator> generators;
    generators.reserve(weights.size());
    for (std::size_t level = 0; level < weights.size(); ++level) {
        generators.push_back(class_tx_generator(static_cast<PriorityLevel>(level)));
    }
    return [weights = std::move(weights), total,
            generators = std::move(generators)](client::Client& c, Rng& rng) {
        double pick = rng.uniform(0.0, total);
        for (std::size_t i = 0; i < weights.size(); ++i) {
            if (pick < weights[i] || i + 1 == weights.size()) {
                generators[i](c, rng);
                return;
            }
            pick -= weights[i];
        }
    };
}

TxGenerator single_chaincode(std::string chaincode) {
    auto seq = std::make_shared<std::uint64_t>(0);
    if (chaincode == "asset_transfer") {
        return [seq](client::Client& c, Rng&) {
            c.submit("asset_transfer", "create",
                     {"a" + std::to_string(c.id().value()) + "-" +
                          std::to_string((*seq)++),
                      "100"});
        };
    }
    if (chaincode == "supply_chain") {
        return [seq](client::Client& c, Rng&) {
            c.submit("supply_chain", "create_shipment",
                     {"s" + std::to_string(c.id().value()) + "-" +
                          std::to_string((*seq)++),
                      "factory", "store"});
        };
    }
    if (chaincode == "record_keeper") {
        return [seq](client::Client& c, Rng&) {
            c.submit("record_keeper", "log",
                     {"r" + std::to_string(c.id().value()) + "-" +
                          std::to_string((*seq)++),
                      "bulk-payload"});
        };
    }
    if (chaincode == "analytics") {
        return [seq](client::Client& c, Rng&) {
            c.submit("analytics", "ingest",
                     {"series" + std::to_string(c.id().value()),
                      "p" + std::to_string((*seq)++), "1.0"});
        };
    }
    throw std::invalid_argument("single_chaincode: unknown chaincode " + chaincode);
}

namespace {
std::string hot_account_name(std::uint32_t i) {
    return "hot" + std::to_string(i);
}
}  // namespace

TxGenerator contended_transfers(std::uint32_t hot_accounts) {
    if (hot_accounts < 2) {
        throw std::invalid_argument("contended_transfers: need >= 2 accounts");
    }
    return [hot_accounts](client::Client& c, Rng& rng) {
        const std::uint32_t from =
            static_cast<std::uint32_t>(rng.next_below(hot_accounts));
        std::uint32_t to = static_cast<std::uint32_t>(rng.next_below(hot_accounts - 1));
        if (to >= from) ++to;
        c.submit("asset_transfer", "transfer",
                 {hot_account_name(from), hot_account_name(to), "1"});
    };
}

void seed_hot_accounts(core::FabricNetwork& net, std::uint32_t hot_accounts,
                       long long initial_balance) {
    for (std::uint32_t i = 0; i < hot_accounts; ++i) {
        net.seed_state("acct/" + hot_account_name(i), std::to_string(initial_balance));
    }
}

// -- Zipfian scale workload -------------------------------------------------

namespace {

/// Generalized harmonic number H_{n,theta} = sum_{i=1..n} 1/i^theta.
double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    if (n < 1) throw std::invalid_argument("ZipfSampler: need n >= 1");
    if (theta < 0.0 || theta >= 1.0) {
        throw std::invalid_argument("ZipfSampler: need 0 <= theta < 1");
    }
    zetan_ = zeta(n_, theta_);
    zeta2_ = zeta(std::min<std::uint64_t>(n_, 2), theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

std::uint64_t ZipfSampler::next_rank(Rng& rng) {
    // Gray et al.'s closed-form inverse-CDF approximation (as in YCSB):
    // exact for the two hottest ranks, asymptotic for the tail.
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (n_ >= 2 && uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return std::min(rank, n_ - 1);
}

std::uint64_t ZipfSampler::scramble(std::uint64_t rank) const {
    // FNV-1a over the rank's 8 bytes — stable across platforms, and the same
    // hash family the world state stripes with, though over different bytes
    // ("u<i>" decimal text there), so hot keys do not pile onto one shard.
    std::uint64_t h = 14695981039346656037ull;
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (rank >> (byte * 8)) & 0xFFu;
        h *= 1099511628211ull;
    }
    return h % n_;
}

std::uint64_t ZipfSampler::next(Rng& rng) { return scramble(next_rank(rng)); }

std::string scale_account_name(std::uint64_t index) {
    return "u" + std::to_string(index);
}

TxGenerator zipfian_transfers(std::uint64_t accounts, double theta,
                              double mint_fraction) {
    if (accounts < 2) {
        throw std::invalid_argument("zipfian_transfers: need >= 2 accounts");
    }
    if (mint_fraction < 0.0 || mint_fraction > 1.0) {
        throw std::invalid_argument("zipfian_transfers: mint_fraction in [0,1]");
    }
    // One sampler shared by every draw from this generator: the zeta
    // normalization is O(accounts) to build, so build it once.
    auto sampler = std::make_shared<ZipfSampler>(accounts, theta);
    return [sampler, mint_fraction](client::Client& c, Rng& rng) {
        const std::uint64_t a = sampler->next(rng);
        if (mint_fraction > 0.0 && rng.chance(mint_fraction)) {
            c.submit("asset_transfer", "mint", {scale_account_name(a), "5"});
            return;
        }
        std::uint64_t b = sampler->next(rng);
        if (b == a) b = (b + 1) % sampler->size();  // distinct endpoints
        c.submit("asset_transfer", "transfer",
                 {scale_account_name(a), scale_account_name(b), "1"});
    };
}

void seed_scale_accounts(core::FabricNetwork& net, std::uint64_t accounts,
                         long long initial_balance) {
    const std::string balance = std::to_string(initial_balance);
    for (std::uint64_t i = 0; i < accounts; ++i) {
        net.seed_state("acct/" + scale_account_name(i), balance);
    }
}

}  // namespace fl::harness
