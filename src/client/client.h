// Client application (Fabric SDK equivalent).
//
// Transaction flow (paper Figure 2): build a proposal, send it to the
// endorsing peers, collect and verify the signed endorsements (including
// each endorser's priority vote and a consolidation pre-check — §3.1), wrap
// everything in an envelope signed by the client, broadcast it to an OSN,
// and finally record end-to-end latency when the commit notification comes
// back from the client's anchor peer.
//
// Graceful degradation (DESIGN.md §11): with `ClientParams::retry.enabled`
// the client arms an endorsement-collection timeout (retrying the proposal
// round with exponential backoff + seeded jitter; a partial response set
// that already satisfies the endorsement policy proceeds instead of
// retrying) and a commit timeout (re-broadcasting the stored envelope to
// the next OSN; the validator's tx-id dedup makes resubmission safe).
// Every submission therefore terminates in exactly one of
// {committed, aborted, failed(reason)}.  Retry is off by default and all
// of its timers/rng draws are gated on the flag, so a fault-free run is
// byte-identical to one built without the machinery.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "crypto/signature.h"
#include "ledger/transaction.h"
#include "orderer/osn.h"
#include "peer/peer.h"
#include "policy/channel_config.h"

namespace fl::obs {
class TraceSink;
}
namespace fl::obs::audit {
class AuditAccountant;
}

namespace fl::client {

/// Client-side timeout / retry policy.  All times are simulated; the jitter
/// draws come from the client's own Rng stream (and only on retries), so a
/// retry timeline is a pure function of (params, seed).
struct RetryParams {
    bool enabled = false;

    /// How long to wait for the full endorsement response set.
    Duration endorsement_timeout = Duration::millis(500);
    /// Proposal-round retries after the first attempt times out.
    unsigned max_endorse_retries = 2;

    /// How long to wait for the commit notification after broadcasting.
    Duration commit_timeout = Duration::seconds(5);
    /// Envelope re-broadcasts after the first commit timeout.
    unsigned max_resubmissions = 2;

    /// Backoff before retry n (1-based): base * multiplier^(n-1), scaled by
    /// a uniform factor in [1 - jitter_frac, 1 + jitter_frac].
    Duration backoff_base = Duration::millis(100);
    double backoff_multiplier = 2.0;
    double jitter_frac = 0.2;
};

struct ClientParams {
    unsigned cpu_parallelism = 4;
    /// Client-side verification of each returned endorsement (§3.1: "it is
    /// in the client's interest to perform the verification up front").
    Duration verify_per_endorsement_cost = Duration::micros(150);
    bool verify_endorsements = true;
    /// Malicious behaviour toggle for experiments: keep only the most
    /// favourable priority votes (§3.1 argues this is harmless under
    /// multi-org endorsement policies).
    bool drop_unfavorable_endorsements = false;
    /// Timeout / retry / resubmission policy (disabled by default).
    RetryParams retry;
};

/// Completed-transaction record for metrics, with per-phase timestamps for
/// latency breakdowns (where does a class's time go?).
struct TxRecord {
    TxId tx_id;
    ClientId client;
    std::string chaincode;
    PriorityLevel priority = kUnassignedPriority;  ///< consolidated (from commit)
    TimePoint submitted_at;
    /// Endorsements collected + verified; envelope handed to the OSN.
    TimePoint broadcast_at;
    /// The ordering service cut the containing block.
    TimePoint block_cut_at;
    /// The anchor peer finished validating + committing the block.
    TimePoint committed_at;
    /// Commit notification arrived back at the client (= end of latency).
    TimePoint completed_at;
    TxValidationCode code = TxValidationCode::kValid;
    bool failed_before_ordering = false;  ///< endorsement/collection failure
    /// Degradation counters: extra proposal rounds and envelope
    /// re-broadcasts this transaction needed (0 in fault-free runs).
    std::uint32_t endorse_retries = 0;
    std::uint32_t resubmissions = 0;

    [[nodiscard]] Duration latency() const { return completed_at - submitted_at; }
    /// Endorsement collection + client-side verification.
    [[nodiscard]] Duration endorsement_phase() const {
        return broadcast_at - submitted_at;
    }
    /// Queueing + weighted-fair scheduling inside the ordering service —
    /// the phase the paper's mechanism reshapes.
    [[nodiscard]] Duration ordering_phase() const {
        return block_cut_at - broadcast_at;
    }
    /// Block delivery + (prioritized) validation + commit.
    [[nodiscard]] Duration validation_phase() const {
        return committed_at - block_cut_at;
    }
    /// Commit-event delivery back to the client.
    [[nodiscard]] Duration notification_phase() const {
        return completed_at - committed_at;
    }
};

class Client {
public:
    Client(sim::Simulator& sim, sim::Network& net, const crypto::KeyStore& keys,
           const policy::ChannelConfig& channel, ClientParams params, ClientId id,
           NodeId node, crypto::Identity identity, Rng rng);

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Wires this client to its endorsers, the ordering service, and the
    /// anchor peer that will deliver commit notifications.
    void connect(std::vector<peer::Peer*> endorsers, std::vector<orderer::Osn*> osns,
                 peer::Peer* anchor_peer);

    /// Submits one transaction; completion is reported asynchronously.
    void submit(std::string chaincode, std::string function,
                std::vector<std::string> args);

    /// Callback fired on every completed (or client-side failed) tx.
    void set_on_complete(std::function<void(const TxRecord&)> cb) {
        on_complete_ = std::move(cb);
    }

    /// Attaches a trace sink (null detaches); branch-on-null emit sites.
    void set_trace(obs::TraceSink* sink) { trace_ = sink; }

    /// Attaches the fairness-audit accountant (null detaches); same
    /// branch-on-null contract as set_trace.
    void set_audit(obs::audit::AuditAccountant* audit) { audit_ = audit; }

    [[nodiscard]] ClientId id() const { return id_; }
    [[nodiscard]] NodeId node() const { return node_; }

    [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
    [[nodiscard]] std::uint64_t completed() const { return completed_; }
    [[nodiscard]] std::uint64_t pending() const { return pending_.size(); }
    [[nodiscard]] std::uint64_t client_side_failures() const { return failures_; }

    // -- degradation statistics ---------------------------------------------
    /// Endorsement-collection rounds that timed out.
    [[nodiscard]] std::uint64_t endorse_timeouts() const { return endorse_timeouts_; }
    /// Proposal rounds re-sent after a timeout.
    [[nodiscard]] std::uint64_t endorse_retries() const { return endorse_retries_; }
    /// Commit waits that timed out.
    [[nodiscard]] std::uint64_t commit_timeouts() const { return commit_timeouts_; }
    /// Envelopes re-broadcast after a commit timeout.
    [[nodiscard]] std::uint64_t resubmissions() const { return resubmissions_; }

private:
    struct PendingTx {
        ledger::Proposal proposal;
        std::vector<peer::EndorsementResult> responses;
        std::size_t expected_responses = 0;
        TimePoint submitted_at;
        TimePoint broadcast_at;  ///< when the envelope left for the OSN
        // -- retry state (untouched unless retry.enabled) -------------------
        std::uint32_t attempt = 0;          ///< proposal round; stale replies ignored
        std::uint32_t endorse_retries = 0;
        std::uint32_t resubmissions = 0;
        bool verifying = false;  ///< verification queued; late replies/timeouts ignored
        std::set<std::uint64_t> responded;  ///< peers heard this round (dup guard)
        sim::TimerHandle endorse_timer;
        sim::TimerHandle commit_timer;
        /// Signed envelope kept for resubmission (retry mode only).
        std::shared_ptr<const ledger::Envelope> envelope;
    };

    void send_proposals(PendingTx& pending);
    void on_endorsement(TxId tx_id, std::uint32_t attempt, std::uint64_t peer_id,
                        peer::EndorsementResult result);
    void on_endorse_timeout(TxId tx_id, std::uint32_t attempt);
    void begin_verification(TxId tx_id);
    void finalize_endorsements(PendingTx& pending);
    void broadcast_envelope(PendingTx& pending, std::vector<ledger::Endorsement> kept,
                            ledger::ReadWriteSet rwset);
    void send_envelope(PendingTx& pending, bool resubmission);
    void on_commit_timeout(TxId tx_id);
    void on_commit(const peer::CommitNotice& notice);
    void fail_client_side(PendingTx& pending, TxValidationCode code);
    [[nodiscard]] Duration retry_backoff(std::uint32_t retry_number);

    sim::Simulator& sim_;
    sim::Network& net_;
    const crypto::KeyStore& keys_;
    const policy::ChannelConfig& channel_;
    ClientParams params_;
    ClientId id_;
    NodeId node_;
    crypto::Identity identity_;
    Rng rng_;
    sim::CpuStation cpu_;

    std::vector<peer::Peer*> endorsers_;
    std::vector<orderer::Osn*> osns_;
    std::size_t next_osn_ = 0;
    std::uint64_t next_tx_seq_ = 0;

    std::unordered_map<TxId, PendingTx> pending_;
    std::function<void(const TxRecord&)> on_complete_;

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t endorse_timeouts_ = 0;
    std::uint64_t endorse_retries_ = 0;
    std::uint64_t commit_timeouts_ = 0;
    std::uint64_t resubmissions_ = 0;

    obs::TraceSink* trace_ = nullptr;
    obs::audit::AuditAccountant* audit_ = nullptr;
};

}  // namespace fl::client
