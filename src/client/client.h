// Client application (Fabric SDK equivalent).
//
// Transaction flow (paper Figure 2): build a proposal, send it to the
// endorsing peers, collect and verify the signed endorsements (including
// each endorser's priority vote and a consolidation pre-check — §3.1), wrap
// everything in an envelope signed by the client, broadcast it to an OSN,
// and finally record end-to-end latency when the commit notification comes
// back from the client's anchor peer.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "crypto/signature.h"
#include "ledger/transaction.h"
#include "orderer/osn.h"
#include "peer/peer.h"
#include "policy/channel_config.h"

namespace fl::obs {
class TraceSink;
}

namespace fl::client {

struct ClientParams {
    unsigned cpu_parallelism = 4;
    /// Client-side verification of each returned endorsement (§3.1: "it is
    /// in the client's interest to perform the verification up front").
    Duration verify_per_endorsement_cost = Duration::micros(150);
    bool verify_endorsements = true;
    /// Malicious behaviour toggle for experiments: keep only the most
    /// favourable priority votes (§3.1 argues this is harmless under
    /// multi-org endorsement policies).
    bool drop_unfavorable_endorsements = false;
};

/// Completed-transaction record for metrics, with per-phase timestamps for
/// latency breakdowns (where does a class's time go?).
struct TxRecord {
    TxId tx_id;
    ClientId client;
    std::string chaincode;
    PriorityLevel priority = kUnassignedPriority;  ///< consolidated (from commit)
    TimePoint submitted_at;
    /// Endorsements collected + verified; envelope handed to the OSN.
    TimePoint broadcast_at;
    /// The ordering service cut the containing block.
    TimePoint block_cut_at;
    /// The anchor peer finished validating + committing the block.
    TimePoint committed_at;
    /// Commit notification arrived back at the client (= end of latency).
    TimePoint completed_at;
    TxValidationCode code = TxValidationCode::kValid;
    bool failed_before_ordering = false;  ///< endorsement/collection failure

    [[nodiscard]] Duration latency() const { return completed_at - submitted_at; }
    /// Endorsement collection + client-side verification.
    [[nodiscard]] Duration endorsement_phase() const {
        return broadcast_at - submitted_at;
    }
    /// Queueing + weighted-fair scheduling inside the ordering service —
    /// the phase the paper's mechanism reshapes.
    [[nodiscard]] Duration ordering_phase() const {
        return block_cut_at - broadcast_at;
    }
    /// Block delivery + (prioritized) validation + commit.
    [[nodiscard]] Duration validation_phase() const {
        return committed_at - block_cut_at;
    }
    /// Commit-event delivery back to the client.
    [[nodiscard]] Duration notification_phase() const {
        return completed_at - committed_at;
    }
};

class Client {
public:
    Client(sim::Simulator& sim, sim::Network& net, const crypto::KeyStore& keys,
           const policy::ChannelConfig& channel, ClientParams params, ClientId id,
           NodeId node, crypto::Identity identity, Rng rng);

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Wires this client to its endorsers, the ordering service, and the
    /// anchor peer that will deliver commit notifications.
    void connect(std::vector<peer::Peer*> endorsers, std::vector<orderer::Osn*> osns,
                 peer::Peer* anchor_peer);

    /// Submits one transaction; completion is reported asynchronously.
    void submit(std::string chaincode, std::string function,
                std::vector<std::string> args);

    /// Callback fired on every completed (or client-side failed) tx.
    void set_on_complete(std::function<void(const TxRecord&)> cb) {
        on_complete_ = std::move(cb);
    }

    /// Attaches a trace sink (null detaches); branch-on-null emit sites.
    void set_trace(obs::TraceSink* sink) { trace_ = sink; }

    [[nodiscard]] ClientId id() const { return id_; }
    [[nodiscard]] NodeId node() const { return node_; }

    [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
    [[nodiscard]] std::uint64_t completed() const { return completed_; }
    [[nodiscard]] std::uint64_t pending() const { return pending_.size(); }
    [[nodiscard]] std::uint64_t client_side_failures() const { return failures_; }

private:
    struct PendingTx {
        ledger::Proposal proposal;
        std::vector<peer::EndorsementResult> responses;
        std::size_t expected_responses = 0;
        TimePoint submitted_at;
        TimePoint broadcast_at;  ///< when the envelope left for the OSN
    };

    void on_endorsement(TxId tx_id, peer::EndorsementResult result);
    void finalize_endorsements(PendingTx& pending);
    void broadcast_envelope(PendingTx& pending, std::vector<ledger::Endorsement> kept,
                            ledger::ReadWriteSet rwset);
    void on_commit(const peer::CommitNotice& notice);
    void fail_client_side(const PendingTx& pending, TxValidationCode code);

    sim::Simulator& sim_;
    sim::Network& net_;
    const crypto::KeyStore& keys_;
    const policy::ChannelConfig& channel_;
    ClientParams params_;
    ClientId id_;
    NodeId node_;
    crypto::Identity identity_;
    Rng rng_;
    sim::CpuStation cpu_;

    std::vector<peer::Peer*> endorsers_;
    std::vector<orderer::Osn*> osns_;
    std::size_t next_osn_ = 0;
    std::uint64_t next_tx_seq_ = 0;

    std::unordered_map<TxId, PendingTx> pending_;
    std::function<void(const TxRecord&)> on_complete_;

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t failures_ = 0;

    obs::TraceSink* trace_ = nullptr;
};

}  // namespace fl::client
