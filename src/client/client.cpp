#include "client/client.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/log.h"
#include "obs/audit/audit.h"
#include "obs/trace.h"
#include "peer/endorser.h"

namespace fl::client {

Client::Client(sim::Simulator& sim, sim::Network& net, const crypto::KeyStore& keys,
               const policy::ChannelConfig& channel, ClientParams params, ClientId id,
               NodeId node, crypto::Identity identity, Rng rng)
    : sim_(sim),
      net_(net),
      keys_(keys),
      channel_(channel),
      params_(params),
      id_(id),
      node_(node),
      identity_(std::move(identity)),
      rng_(rng),
      cpu_(sim, params.cpu_parallelism) {}

void Client::connect(std::vector<peer::Peer*> endorsers,
                     std::vector<orderer::Osn*> osns, peer::Peer* anchor_peer) {
    if (endorsers.empty() || osns.empty() || anchor_peer == nullptr) {
        throw std::invalid_argument("Client::connect: incomplete wiring");
    }
    endorsers_ = std::move(endorsers);
    osns_ = std::move(osns);
    anchor_peer->register_client(id_, node_,
                                 [this](peer::CommitNotice n) { on_commit(n); });
    // Deterministic per-client OSN rotation offset.
    next_osn_ = static_cast<std::size_t>(id_.value()) % osns_.size();
}

void Client::submit(std::string chaincode, std::string function,
                    std::vector<std::string> args) {
    if (endorsers_.empty()) {
        throw std::logic_error("Client::submit before connect()");
    }
    // Key everything this submission schedules under the client's own
    // domain, so calls from outside the run loop (tests, workload bootstrap)
    // produce identical event keys at every partition layout.
    sim::DomainScope domain(sim_, node_.value());
    ledger::Proposal proposal;
    // Globally-unique tx id: client id in the high bits, sequence below.
    proposal.tx_id = TxId{(id_.value() << 40) | next_tx_seq_++};
    proposal.channel = channel_.id;
    proposal.client = id_;
    proposal.client_identity = identity_.name;
    proposal.chaincode = std::move(chaincode);
    proposal.function = std::move(function);
    proposal.args = std::move(args);
    proposal.created_at = sim_.now();

    PendingTx pending;
    pending.proposal = proposal;
    pending.expected_responses = endorsers_.size();
    pending.submitted_at = sim_.now();
    const auto [it, inserted] = pending_.emplace(proposal.tx_id, std::move(pending));
    ++submitted_;
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kSubmit;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = proposal.tx_id.value();
        trace_->emit(ev);
    }
    if (audit_) audit_->on_submit(id_.value(), sim_.now());

    send_proposals(it->second);
}

void Client::send_proposals(PendingTx& pending) {
    const TxId tx_id = pending.proposal.tx_id;
    const std::uint32_t attempt = pending.attempt;
    for (peer::Peer* endorser : endorsers_) {
        const std::uint64_t peer_id = endorser->id().value();
        net_.send(node_, endorser->node(), pending.proposal.wire_size(),
                  [this, endorser, attempt, peer_id, proposal = pending.proposal] {
                      endorser->handle_proposal(
                          proposal, [this, endorser, attempt, peer_id,
                                     tx_id = proposal.tx_id](
                                        peer::EndorsementResult result) {
                              // Route the response back over the network.
                              const std::size_t wire =
                                  256 + result.rwset.wire_size();
                              net_.send(endorser->node(), node_, wire,
                                        [this, tx_id, attempt, peer_id,
                                         result = std::move(result)] {
                                            on_endorsement(tx_id, attempt, peer_id,
                                                           result);
                                        });
                          });
                  });
    }
    if (params_.retry.enabled) {
        pending.endorse_timer = sim_.schedule_timer(
            params_.retry.endorsement_timeout,
            [this, tx_id, attempt] { on_endorse_timeout(tx_id, attempt); });
    }
}

void Client::on_endorsement(TxId tx_id, std::uint32_t attempt,
                            std::uint64_t peer_id, peer::EndorsementResult result) {
    const auto it = pending_.find(tx_id);
    if (it == pending_.end()) return;  // already failed/abandoned/completed
    PendingTx& pending = it->second;
    if (attempt != pending.attempt) return;  // reply from a timed-out round
    if (pending.verifying) return;           // already proceeding with a quorum
    if (!pending.responded.insert(peer_id).second) {
        return;  // duplicated delivery of the same reply (message fault)
    }
    pending.responses.push_back(std::move(result));
    if (pending.responses.size() < pending.expected_responses) return;
    begin_verification(tx_id);
}

void Client::begin_verification(TxId tx_id) {
    const auto it = pending_.find(tx_id);
    if (it == pending_.end()) return;
    PendingTx& pending = it->second;
    pending.verifying = true;
    pending.endorse_timer.cancel();
    // Verify and assemble on the client CPU.
    const Duration cost = params_.verify_per_endorsement_cost *
                          static_cast<std::int64_t>(pending.responses.size());
    cpu_.submit(params_.verify_endorsements ? cost : Duration::zero(),
                [this, tx_id] {
                    const auto it2 = pending_.find(tx_id);
                    if (it2 == pending_.end()) return;
                    finalize_endorsements(it2->second);
                });
}

void Client::on_endorse_timeout(TxId tx_id, std::uint32_t attempt) {
    const auto it = pending_.find(tx_id);
    if (it == pending_.end()) return;
    PendingTx& pending = it->second;
    if (attempt != pending.attempt || pending.verifying) return;
    ++endorse_timeouts_;
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kEndorseTimeout;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = tx_id.value();
        ev.value = attempt;
        trace_->emit(ev);
    }

    // A partial response set that already satisfies the endorsement policy
    // (k-of-n with endorsers down) proceeds — degraded, not failed.
    std::set<OrgId> orgs;
    for (const peer::EndorsementResult& r : pending.responses) {
        if (r.ok) orgs.insert(r.endorsement.org);
    }
    if (!pending.responses.empty() &&
        channel_.endorsement_policy.satisfied_by(orgs)) {
        begin_verification(tx_id);
        return;
    }

    if (pending.endorse_retries >= params_.retry.max_endorse_retries) {
        fail_client_side(pending, TxValidationCode::kEndorsementTimeout);
        return;
    }

    ++pending.endorse_retries;
    ++endorse_retries_;
    ++pending.attempt;
    pending.responses.clear();
    pending.responded.clear();
    const Duration backoff = retry_backoff(pending.endorse_retries);
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kRetry;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = tx_id.value();
        ev.value = pending.attempt;
        trace_->emit(ev);
    }
    FL_DEBUG("client " << id_.value() << ": tx " << tx_id.value()
                       << " endorse retry " << pending.endorse_retries << " in "
                       << backoff.as_millis() << " ms");
    sim_.schedule_after(backoff, [this, tx_id, resend_attempt = pending.attempt] {
        const auto it2 = pending_.find(tx_id);
        if (it2 == pending_.end()) return;
        if (it2->second.attempt != resend_attempt || it2->second.verifying) return;
        send_proposals(it2->second);
    });
}

Duration Client::retry_backoff(std::uint32_t retry_number) {
    const double scale =
        std::pow(params_.retry.backoff_multiplier,
                 static_cast<double>(retry_number) - 1.0);
    const double jitter =
        1.0 + rng_.uniform(-params_.retry.jitter_frac, params_.retry.jitter_frac);
    return Duration::from_seconds(params_.retry.backoff_base.as_seconds() * scale *
                                  jitter);
}

void Client::finalize_endorsements(PendingTx& pending) {
    // Adopt the read-write set of the first successful endorsement; keep
    // every endorsement that verifies against it (endorsers that simulated
    // against divergent state simply don't count, as in Fabric).
    const peer::EndorsementResult* reference = nullptr;
    for (const peer::EndorsementResult& r : pending.responses) {
        if (r.ok) {
            reference = &r;
            break;
        }
    }
    if (reference == nullptr) {
        fail_client_side(pending, TxValidationCode::kEndorsementPolicyFailure);
        return;
    }

    std::vector<ledger::Endorsement> kept;
    kept.reserve(pending.responses.size());
    for (const peer::EndorsementResult& r : pending.responses) {
        if (!r.ok) continue;
        if (params_.verify_endorsements &&
            !peer::verify_endorsement(pending.proposal, reference->rwset,
                                      r.endorsement, keys_)) {
            continue;
        }
        kept.push_back(r.endorsement);
    }

    if (params_.drop_unfavorable_endorsements && !kept.empty()) {
        // Malicious client: discard endorsements voting a worse (higher
        // numeric) priority than the best vote seen.
        const PriorityLevel best =
            std::min_element(kept.begin(), kept.end(),
                             [](const auto& a, const auto& b) {
                                 return a.priority < b.priority;
                             })
                ->priority;
        std::erase_if(kept, [best](const ledger::Endorsement& e) {
            return e.priority != best;
        });
    }

    // Client-side endorsement-policy pre-check.
    std::set<OrgId> orgs;
    for (const ledger::Endorsement& e : kept) {
        orgs.insert(e.org);
    }
    if (!channel_.endorsement_policy.satisfied_by(orgs)) {
        fail_client_side(pending, TxValidationCode::kEndorsementPolicyFailure);
        return;
    }

    broadcast_envelope(pending, std::move(kept), reference->rwset);
}

void Client::broadcast_envelope(PendingTx& pending,
                                std::vector<ledger::Endorsement> kept,
                                ledger::ReadWriteSet rwset) {
    auto env = std::make_shared<ledger::Envelope>();
    env->proposal = pending.proposal;
    env->rwset = std::move(rwset);
    env->endorsements = std::move(kept);
    env->broadcast_at = sim_.now();
    pending.broadcast_at = sim_.now();
    const crypto::Digest d = env->digest();
    env->client_signature = keys_.sign(identity_.name, BytesView(d.data(), d.size()));

    pending.envelope = std::move(env);
    send_envelope(pending, /*resubmission=*/false);
    if (!params_.retry.enabled) {
        // No resubmission possible: drop the envelope, keep only the map
        // entry for commit matching (pre-retry memory footprint).
        pending.envelope.reset();
    }

    // Responses are no longer needed; keep the map entry for commit matching.
    pending.responses.clear();
    pending.responses.shrink_to_fit();
}

void Client::send_envelope(PendingTx& pending, bool resubmission) {
    orderer::Osn* osn = osns_[next_osn_];
    next_osn_ = (next_osn_ + 1) % osns_.size();
    const std::size_t wire = pending.envelope->wire_size();
    const TxId tx_id = pending.proposal.tx_id;
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = resubmission ? obs::EventType::kResubmit
                               : obs::EventType::kBroadcast;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = tx_id.value();
        ev.value = resubmission ? pending.resubmissions : wire;
        trace_->emit(ev);
    }
    net_.send(node_, osn->node(), wire,
              [osn, env = pending.envelope] { osn->broadcast(env); });
    if (params_.retry.enabled) {
        pending.commit_timer.cancel();
        pending.commit_timer = sim_.schedule_timer(
            params_.retry.commit_timeout,
            [this, tx_id] { on_commit_timeout(tx_id); });
    }
}

void Client::on_commit_timeout(TxId tx_id) {
    const auto it = pending_.find(tx_id);
    if (it == pending_.end()) return;
    PendingTx& pending = it->second;
    ++commit_timeouts_;
    if (pending.resubmissions >= params_.retry.max_resubmissions) {
        // The transaction may or may not have committed (the notification
        // could have been the lost message) — the record says so via code.
        fail_client_side(pending, TxValidationCode::kCommitTimeout);
        return;
    }
    ++pending.resubmissions;
    ++resubmissions_;
    FL_DEBUG("client " << id_.value() << ": tx " << tx_id.value()
                       << " commit timeout, resubmission "
                       << pending.resubmissions);
    send_envelope(pending, /*resubmission=*/true);
}

void Client::on_commit(const peer::CommitNotice& notice) {
    const auto it = pending_.find(notice.tx_id);
    if (it == pending_.end()) return;  // another client's tx or duplicate
    it->second.endorse_timer.cancel();
    it->second.commit_timer.cancel();
    TxRecord record;
    record.tx_id = notice.tx_id;
    record.client = id_;
    record.chaincode = it->second.proposal.chaincode;
    record.priority = notice.priority;
    record.submitted_at = it->second.submitted_at;
    record.broadcast_at = it->second.broadcast_at;
    record.block_cut_at = notice.block_cut_at;
    record.committed_at = notice.committed_at;
    record.completed_at = sim_.now();
    record.code = notice.code;
    record.endorse_retries = it->second.endorse_retries;
    record.resubmissions = it->second.resubmissions;
    pending_.erase(it);
    ++completed_;
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kComplete;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = notice.tx_id.value();
        ev.priority = notice.priority;
        ev.block = notice.block;
        ev.code = notice.code;
        trace_->emit(ev);
    }
    if (audit_) audit_->on_client_terminal(id_.value(), sim_.now());
    if (on_complete_) on_complete_(record);
}

void Client::fail_client_side(PendingTx& pending, TxValidationCode code) {
    pending.endorse_timer.cancel();
    pending.commit_timer.cancel();
    TxRecord record;
    record.tx_id = pending.proposal.tx_id;
    record.client = id_;
    record.chaincode = pending.proposal.chaincode;
    record.submitted_at = pending.submitted_at;
    record.broadcast_at = pending.broadcast_at;
    record.completed_at = sim_.now();
    record.code = code;
    // Includes kCommitTimeout: no commit was observed, even if the envelope
    // reached the ordering service — from the client's accounting the
    // submission failed before a confirmed ordering.
    record.failed_before_ordering = true;
    record.endorse_retries = pending.endorse_retries;
    record.resubmissions = pending.resubmissions;
    ++failures_;
    FL_DEBUG("client " << id_.value() << ": tx " << pending.proposal.tx_id.value()
                       << " failed client-side: " << to_string(code));
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kClientFail;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = pending.proposal.tx_id.value();
        ev.code = code;
        trace_->emit(ev);
    }
    if (audit_) audit_->on_client_terminal(id_.value(), sim_.now());
    const TxId id = pending.proposal.tx_id;
    pending_.erase(id);
    if (on_complete_) on_complete_(record);
}

}  // namespace fl::client
