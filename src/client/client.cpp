#include "client/client.h"

#include <algorithm>
#include <stdexcept>

#include "common/log.h"
#include "obs/trace.h"
#include "peer/endorser.h"

namespace fl::client {

Client::Client(sim::Simulator& sim, sim::Network& net, const crypto::KeyStore& keys,
               const policy::ChannelConfig& channel, ClientParams params, ClientId id,
               NodeId node, crypto::Identity identity, Rng rng)
    : sim_(sim),
      net_(net),
      keys_(keys),
      channel_(channel),
      params_(params),
      id_(id),
      node_(node),
      identity_(std::move(identity)),
      rng_(rng),
      cpu_(sim, params.cpu_parallelism) {}

void Client::connect(std::vector<peer::Peer*> endorsers,
                     std::vector<orderer::Osn*> osns, peer::Peer* anchor_peer) {
    if (endorsers.empty() || osns.empty() || anchor_peer == nullptr) {
        throw std::invalid_argument("Client::connect: incomplete wiring");
    }
    endorsers_ = std::move(endorsers);
    osns_ = std::move(osns);
    anchor_peer->register_client(id_, node_,
                                 [this](peer::CommitNotice n) { on_commit(n); });
    // Deterministic per-client OSN rotation offset.
    next_osn_ = static_cast<std::size_t>(id_.value()) % osns_.size();
}

void Client::submit(std::string chaincode, std::string function,
                    std::vector<std::string> args) {
    if (endorsers_.empty()) {
        throw std::logic_error("Client::submit before connect()");
    }
    ledger::Proposal proposal;
    // Globally-unique tx id: client id in the high bits, sequence below.
    proposal.tx_id = TxId{(id_.value() << 40) | next_tx_seq_++};
    proposal.channel = channel_.id;
    proposal.client = id_;
    proposal.client_identity = identity_.name;
    proposal.chaincode = std::move(chaincode);
    proposal.function = std::move(function);
    proposal.args = std::move(args);
    proposal.created_at = sim_.now();

    PendingTx pending;
    pending.proposal = proposal;
    pending.expected_responses = endorsers_.size();
    pending.submitted_at = sim_.now();
    pending_.emplace(proposal.tx_id, std::move(pending));
    ++submitted_;
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kSubmit;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = proposal.tx_id.value();
        trace_->emit(ev);
    }

    for (peer::Peer* endorser : endorsers_) {
        net_.send(node_, endorser->node(), proposal.wire_size(),
                  [this, endorser, proposal] {
                      endorser->handle_proposal(
                          proposal, [this, endorser, tx_id = proposal.tx_id](
                                        peer::EndorsementResult result) {
                              // Route the response back over the network.
                              const std::size_t wire =
                                  256 + result.rwset.wire_size();
                              net_.send(endorser->node(), node_, wire,
                                        [this, tx_id, result = std::move(result)] {
                                            on_endorsement(tx_id, result);
                                        });
                          });
                  });
    }
}

void Client::on_endorsement(TxId tx_id, peer::EndorsementResult result) {
    const auto it = pending_.find(tx_id);
    if (it == pending_.end()) return;  // already failed/abandoned
    PendingTx& pending = it->second;
    pending.responses.push_back(std::move(result));
    if (pending.responses.size() < pending.expected_responses) return;

    // All endorsers answered: verify and assemble on the client CPU.
    const Duration cost = params_.verify_per_endorsement_cost *
                          static_cast<std::int64_t>(pending.responses.size());
    cpu_.submit(params_.verify_endorsements ? cost : Duration::zero(),
                [this, tx_id] {
                    const auto it2 = pending_.find(tx_id);
                    if (it2 == pending_.end()) return;
                    finalize_endorsements(it2->second);
                });
}

void Client::finalize_endorsements(PendingTx& pending) {
    // Adopt the read-write set of the first successful endorsement; keep
    // every endorsement that verifies against it (endorsers that simulated
    // against divergent state simply don't count, as in Fabric).
    const peer::EndorsementResult* reference = nullptr;
    for (const peer::EndorsementResult& r : pending.responses) {
        if (r.ok) {
            reference = &r;
            break;
        }
    }
    if (reference == nullptr) {
        fail_client_side(pending, TxValidationCode::kEndorsementPolicyFailure);
        return;
    }

    std::vector<ledger::Endorsement> kept;
    kept.reserve(pending.responses.size());
    for (const peer::EndorsementResult& r : pending.responses) {
        if (!r.ok) continue;
        if (params_.verify_endorsements &&
            !peer::verify_endorsement(pending.proposal, reference->rwset,
                                      r.endorsement, keys_)) {
            continue;
        }
        kept.push_back(r.endorsement);
    }

    if (params_.drop_unfavorable_endorsements && !kept.empty()) {
        // Malicious client: discard endorsements voting a worse (higher
        // numeric) priority than the best vote seen.
        const PriorityLevel best =
            std::min_element(kept.begin(), kept.end(),
                             [](const auto& a, const auto& b) {
                                 return a.priority < b.priority;
                             })
                ->priority;
        std::erase_if(kept, [best](const ledger::Endorsement& e) {
            return e.priority != best;
        });
    }

    // Client-side endorsement-policy pre-check.
    std::set<OrgId> orgs;
    for (const ledger::Endorsement& e : kept) {
        orgs.insert(e.org);
    }
    if (!channel_.endorsement_policy.satisfied_by(orgs)) {
        fail_client_side(pending, TxValidationCode::kEndorsementPolicyFailure);
        return;
    }

    broadcast_envelope(pending, std::move(kept), reference->rwset);
}

void Client::broadcast_envelope(PendingTx& pending,
                                std::vector<ledger::Endorsement> kept,
                                ledger::ReadWriteSet rwset) {
    auto env = std::make_shared<ledger::Envelope>();
    env->proposal = pending.proposal;
    env->rwset = std::move(rwset);
    env->endorsements = std::move(kept);
    env->broadcast_at = sim_.now();
    pending.broadcast_at = sim_.now();
    const crypto::Digest d = env->digest();
    env->client_signature = keys_.sign(identity_.name, BytesView(d.data(), d.size()));

    orderer::Osn* osn = osns_[next_osn_];
    next_osn_ = (next_osn_ + 1) % osns_.size();
    const std::size_t wire = env->wire_size();
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kBroadcast;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = pending.proposal.tx_id.value();
        ev.value = wire;
        trace_->emit(ev);
    }
    net_.send(node_, osn->node(), wire,
              [osn, env = std::move(env)] { osn->broadcast(env); });

    // Responses are no longer needed; keep the map entry for commit matching.
    pending.responses.clear();
    pending.responses.shrink_to_fit();
}

void Client::on_commit(const peer::CommitNotice& notice) {
    const auto it = pending_.find(notice.tx_id);
    if (it == pending_.end()) return;  // another client's tx or duplicate
    TxRecord record;
    record.tx_id = notice.tx_id;
    record.client = id_;
    record.chaincode = it->second.proposal.chaincode;
    record.priority = notice.priority;
    record.submitted_at = it->second.submitted_at;
    record.broadcast_at = it->second.broadcast_at;
    record.block_cut_at = notice.block_cut_at;
    record.committed_at = notice.committed_at;
    record.completed_at = sim_.now();
    record.code = notice.code;
    pending_.erase(it);
    ++completed_;
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kComplete;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = notice.tx_id.value();
        ev.priority = notice.priority;
        ev.block = notice.block;
        ev.code = notice.code;
        trace_->emit(ev);
    }
    if (on_complete_) on_complete_(record);
}

void Client::fail_client_side(const PendingTx& pending, TxValidationCode code) {
    TxRecord record;
    record.tx_id = pending.proposal.tx_id;
    record.client = id_;
    record.chaincode = pending.proposal.chaincode;
    record.submitted_at = pending.submitted_at;
    record.completed_at = sim_.now();
    record.code = code;
    record.failed_before_ordering = true;
    ++failures_;
    FL_DEBUG("client " << id_.value() << ": tx " << pending.proposal.tx_id.value()
                       << " failed client-side: " << to_string(code));
    if (trace_) {
        obs::TraceEvent ev;
        ev.at = sim_.now();
        ev.type = obs::EventType::kClientFail;
        ev.actor_kind = obs::ActorKind::kClient;
        ev.actor = id_.value();
        ev.tx = pending.proposal.tx_id.value();
        ev.code = code;
        trace_->emit(ev);
    }
    const TxId id = pending.proposal.tx_id;
    pending_.erase(id);
    if (on_complete_) on_complete_(record);
}

}  // namespace fl::client
