// Microbenchmarks M1 — crypto substrate: SHA-256, HMAC, Merkle trees,
// simulated signatures.  These set the constant factors behind every
// endorsement/validation in the simulation.
#include <benchmark/benchmark.h>

#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/signature.h"

namespace {

using namespace fl;
using namespace fl::crypto;

void BM_Sha256(benchmark::State& state) {
    const Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sha256(BytesView(data.data(), data.size())));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(512)->Arg(4096)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
    const Bytes key(32, 0x11);
    const Bytes msg(static_cast<std::size_t>(state.range(0)), 0x22);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hmac_sha256(BytesView(key.data(), key.size()),
                                             BytesView(msg.data(), msg.size())));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(256)->Arg(1024);

void BM_MerkleRoot(benchmark::State& state) {
    std::vector<Digest> leaves;
    for (int i = 0; i < state.range(0); ++i) {
        leaves.push_back(sha256("leaf" + std::to_string(i)));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(merkle_root(leaves));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MerkleRoot)->Arg(100)->Arg(500)->Arg(2000);

void BM_MerkleProofVerify(benchmark::State& state) {
    std::vector<Digest> leaves;
    for (int i = 0; i < 500; ++i) {
        leaves.push_back(sha256("leaf" + std::to_string(i)));
    }
    const Digest root = merkle_root(leaves);
    const auto proof = merkle_proof(leaves, 250);
    for (auto _ : state) {
        benchmark::DoNotOptimize(verify_proof(leaves[250], *proof, root));
    }
}
BENCHMARK(BM_MerkleProofVerify);

void BM_SignVerify(benchmark::State& state) {
    KeyStore ks;
    ks.register_identity({"org0.peer0", OrgId{0}});
    const Bytes msg(512, 0x33);
    const Signature sig = ks.sign("org0.peer0", BytesView(msg.data(), msg.size()));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ks.verify(sig, BytesView(msg.data(), msg.size())));
    }
}
BENCHMARK(BM_SignVerify);

}  // namespace
