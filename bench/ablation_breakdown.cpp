// Ablation A3 — latency breakdown: where does each priority class's time go?
//
// Runs the default workload at the capacity knee with and without the
// priority machinery and decomposes end-to-end latency into the pipeline
// phases.  The point: the entire differentiation happens in the *ordering*
// phase (queueing + weighted-fair block formation); endorsement, validation
// and notification are class-blind, exactly as the paper's design intends.
//
// Sweep layout: two paired points (with/without priority).  This bench also
// keeps the per-run metrics dumps, so its JSON carries the full phase
// histograms per run (core::write_metrics_json).
#include "fig_common.h"

namespace {

void print_breakdown(const char* title, const fl::harness::AggregateResult& r) {
    using namespace fl;
    std::cout << title << "\n";
    harness::Table table({"priority", "endorse (s)", "ordering (s)",
                          "validate (s)", "notify (s)", "total (s)"});
    for (const auto& [level, phases] : r.phases_by_priority) {
        const double total = phases.endorsement.mean() + phases.ordering.mean() +
                             phases.validation.mean() +
                             phases.notification.mean();
        table.add_row({level == kUnassignedPriority ? "n/a" : std::to_string(level),
                       harness::fmt(phases.endorsement.mean(), 3),
                       harness::fmt(phases.ordering.mean(), 3),
                       harness::fmt(phases.validation.mean(), 3),
                       harness::fmt(phases.notification.mean(), 3),
                       harness::fmt(total, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli =
        harness::parse_sweep_cli(argc, argv, 12345, "ablation_breakdown");
    const unsigned runs = cli.runs_or(1);
    const std::uint64_t total_txs = cli.txs_or(15'000);

    harness::print_banner(std::cout, "Ablation A3: latency breakdown by phase",
                          "500 tps (capacity knee), policy 2:3:1, arrivals 1:2:1");

    harness::SweepSpec sweep;
    sweep.name = "ablation_breakdown";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    for (const bool priority : {true, false}) {
        auto point = paper_point(priority ? "priority" : "baseline",
                                 {{"priority_enabled", priority ? 1.0 : 0.0}},
                                 paper_config(priority), 500.0, total_txs, runs,
                                 /*seed_group=*/0);
        point.spec.keep_run_metrics = true;
        sweep.points.push_back(std::move(point));
    }

    const auto results = run_timed_sweep(sweep, cli);

    print_breakdown("with priority (multi-queue WFQ ordering):",
                    results[0].result);
    print_breakdown("without priority (vanilla FIFO ordering):",
                    results[1].result);

    std::cout << "The endorsement/validation/notification phases are nearly "
                 "identical across\nclasses and modes; the ordering phase is where "
                 "the weighted fair queueing\nredistributes waiting time from high "
                 "to low priority classes.\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    return 0;
}
