// Ablation A3 — latency breakdown: where does each priority class's time go?
//
// Runs the default workload at the capacity knee with and without the
// priority machinery and decomposes end-to-end latency into the pipeline
// phases.  The point: the entire differentiation happens in the *ordering*
// phase (queueing + weighted-fair block formation); endorsement, validation
// and notification are class-blind, exactly as the paper's design intends.
#include "fig_common.h"

namespace {

void print_breakdown(const char* title, const fl::core::MetricsCollector& metrics) {
    using namespace fl;
    std::cout << title << "\n";
    harness::Table table({"priority", "endorse (s)", "ordering (s)",
                          "validate (s)", "notify (s)", "total (s)"});
    for (const auto& [level, phases] : metrics.phases_by_priority()) {
        const double total = phases.endorsement.mean() + phases.ordering.mean() +
                             phases.validation.mean() +
                             phases.notification.mean();
        table.add_row({level == kUnassignedPriority ? "n/a" : std::to_string(level),
                       harness::fmt(phases.endorsement.mean(), 3),
                       harness::fmt(phases.ordering.mean(), 3),
                       harness::fmt(phases.validation.mean(), 3),
                       harness::fmt(phases.notification.mean(), 3),
                       harness::fmt(total, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

fl::core::MetricsCollector run(bool priority_enabled, std::uint64_t total_txs) {
    using namespace fl;
    auto cfg = bench::paper_config(priority_enabled);
    cfg.seed = 12345;
    core::FabricNetwork net(cfg);
    core::MetricsCollector metrics;
    net.set_tx_sink([&metrics](const client::TxRecord& r) { metrics.record(r); });
    harness::WorkloadDriver driver(net, bench::paper_workload(3, 500.0, total_txs),
                                   Rng(2));
    driver.start();
    net.run();
    return metrics;
}

}  // namespace

int main() {
    using namespace fl;

    const std::uint64_t total_txs = harness::total_txs_from_env(15'000);
    harness::print_banner(std::cout, "Ablation A3: latency breakdown by phase",
                          "500 tps (capacity knee), policy 2:3:1, arrivals 1:2:1");

    const auto with = run(true, total_txs);
    const auto without = run(false, total_txs);

    print_breakdown("with priority (multi-queue WFQ ordering):", with);
    print_breakdown("without priority (vanilla FIFO ordering):", without);

    std::cout << "The endorsement/validation/notification phases are nearly "
                 "identical across\nclasses and modes; the ordering phase is where "
                 "the weighted fair queueing\nredistributes waiting time from high "
                 "to low priority classes.\n";
    return 0;
}
