// Ablation A5 — fault injection and graceful degradation (DESIGN.md §11).
//
// Runs the paper pipeline under increasingly hostile deterministic fault
// mixes — message drop/duplication/delay, OSN crash + replay recovery,
// endorser outages survived by the k-of-n policy, broker unavailability —
// and asserts the chaos invariants on every run:
//   1. surviving OSNs emit byte-identical block sequences (prefix-consistent;
//      fully identical once crashed OSNs have replayed);
//   2. every committed ledger's hash chain verifies;
//   3. no transaction commits twice;
//   4. every client submission terminates in exactly one of
//      {committed, aborted, failed(reason)}.
// The process exits non-zero if any invariant is violated, so this bench
// doubles as the chaos gate in CI.  Because every fault is driven by the
// simulated clock and the seeded fault RNG streams, the JSON output is
// byte-identical at any --threads value.
#include "fig_common.h"

#include <set>

namespace {

using namespace fl;

client::RetryParams chaos_retry() {
    client::RetryParams retry;
    retry.enabled = true;
    retry.endorsement_timeout = Duration::millis(500);
    retry.max_endorse_retries = 3;
    retry.commit_timeout = Duration::seconds(3);
    retry.max_resubmissions = 3;
    retry.backoff_base = Duration::millis(100);
    return retry;
}

sim::MessageFaultParams chaos_messages() {
    sim::MessageFaultParams m;
    m.drop_prob = 0.02;
    m.dup_prob = 0.02;
    m.delay_prob = 0.05;
    m.delay_mean = Duration::millis(50);
    return m;
}

/// Post-run probe: evaluate the chaos invariants on the drained network and
/// accumulate violation counts (all zero in a correct run) plus the
/// degradation counters into the point's extra map.
void chaos_probe(core::FabricNetwork& net, std::map<std::string, double>& extra) {
    if (!net.osn_blocks_prefix_consistent()) extra["osn_divergence"] += 1.0;
    for (const auto& osn : net.osns()) {
        extra["replay_mismatches"] +=
            static_cast<double>(osn->replay_hash_mismatches());
        extra["osn_crashes"] += static_cast<double>(osn->crashes());
    }
    for (const auto& peer : net.peers()) {
        if (!peer->chain().verify_chain()) extra["broken_chains"] += 1.0;
    }
    // No double commits: a tx id may carry the VALID verdict at most once.
    const ledger::BlockStore& chain = net.peers().front()->chain();
    std::set<TxId> committed;
    for (std::size_t b = 0; b < chain.height(); ++b) {
        const ledger::Block& block = chain.at(b);
        for (std::size_t i = 0; i < block.transactions.size(); ++i) {
            if (block.validation_codes[i] == TxValidationCode::kValid &&
                !committed.insert(block.transactions[i].tx_id()).second) {
                extra["double_commits"] += 1.0;
            }
        }
    }
    // Exactly-one-terminal-state accounting.
    for (const auto& c : net.clients()) {
        extra["unterminated"] += static_cast<double>(
            c->pending() + c->submitted() - c->completed() - c->client_side_failures());
        extra["endorse_retries"] += static_cast<double>(c->endorse_retries());
        extra["resubmissions"] += static_cast<double>(c->resubmissions());
    }
    extra["messages_dropped"] = static_cast<double>(net.network().messages_dropped());
    extra["faults_applied"] = static_cast<double>(net.faults_applied());
}

bool invariants_ok(const harness::AggregateResult& r) {
    return r.extra_total("osn_divergence") == 0.0 &&
           r.extra_total("replay_mismatches") == 0.0 &&
           r.extra_total("broken_chains") == 0.0 &&
           r.extra_total("double_commits") == 0.0 &&
           r.extra_total("unterminated") == 0.0;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli = harness::parse_sweep_cli(argc, argv, 6000, "ablation_faults");
    const unsigned runs = cli.runs_or(2);
    const std::uint64_t total_txs = cli.txs_or(6'000);
    const double total_tps = 300.0;
    const Duration horizon =
        Duration::from_seconds(static_cast<double>(total_txs) / total_tps);

    harness::print_banner(
        std::cout, "Ablation A5: fault injection and graceful degradation",
        "2:3:1 @ 300 tps, k-of-n endorsement (k=2), client retry enabled");

    // Every point shares the baseline arrival process (same seed group) and
    // the same retry config; only the fault mix varies.
    struct Mix {
        const char* label;
        fault::FaultSpec faults;
    };
    std::vector<Mix> mixes;
    mixes.push_back({"none", {}});
    {
        fault::FaultSpec f;
        f.messages = chaos_messages();
        mixes.push_back({"msg_faults", std::move(f)});
    }
    {
        fault::FaultSpec f;
        fault::FaultProfile p;
        p.horizon = horizon;
        p.expected_osn_crashes = 2.0;
        p.osn_downtime_mean = Duration::seconds(2);
        f.profile = p;
        mixes.push_back({"osn_crash", std::move(f)});
    }
    {
        fault::FaultSpec f;
        fault::FaultProfile p;
        p.horizon = horizon;
        p.expected_endorser_outages = 2.0;
        p.endorser_downtime_mean = Duration::seconds(1);
        p.expected_endorser_slowdowns = 1.0;
        p.endorser_slow_mean = Duration::seconds(2);
        f.profile = p;
        mixes.push_back({"endorser_outage", std::move(f)});
    }
    {
        fault::FaultSpec f;
        f.messages = chaos_messages();
        fault::FaultProfile p;
        p.horizon = horizon;
        p.expected_osn_crashes = 1.0;
        p.osn_downtime_mean = Duration::seconds(2);
        p.expected_endorser_outages = 1.0;
        p.endorser_downtime_mean = Duration::seconds(1);
        p.expected_broker_outages = 1.0;
        p.broker_outage_mean = Duration::millis(500);
        f.profile = p;
        mixes.push_back({"combined", std::move(f)});
    }

    harness::SweepSpec sweep;
    sweep.name = "ablation_faults";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    for (std::size_t i = 0; i < mixes.size(); ++i) {
        auto cfg = paper_config(true);
        cfg.endorsement_k = 2;
        cfg.client_params.retry = chaos_retry();
        cfg.faults = mixes[i].faults;
        harness::ExperimentPoint point = paper_point(
            mixes[i].label, {{"mix", static_cast<double>(i)}}, std::move(cfg),
            total_tps, total_txs, runs, /*seed_group=*/0);
        point.spec.run_probe = chaos_probe;
        sweep.points.push_back(std::move(point));
    }

    const auto results = run_timed_sweep(sweep, cli);

    harness::Table table({"fault mix", "committed", "failed", "endorse retries",
                          "resubmissions", "msgs dropped", "faults", "invariants"});
    bool all_ok = true;
    for (const auto& pr : results) {
        const auto& r = pr.result;
        const bool ok = invariants_ok(r);
        all_ok = all_ok && ok;
        table.add_row(
            {pr.label,
             std::to_string(r.total_committed + r.total_invalid),
             std::to_string(r.total_client_failures),
             harness::fmt(r.extra_total("endorse_retries"), 0),
             harness::fmt(r.extra_total("resubmissions"), 0),
             harness::fmt(r.extra_total("messages_dropped"), 0),
             harness::fmt(r.extra_total("faults_applied"), 0),
             ok ? "OK" : "VIOLATED"});
    }
    table.print(std::cout);
    std::cout << "\nInvariants per run: prefix-consistent OSN block sequences, "
                 "verified hash\nchains, no double commits, every submission in "
                 "exactly one terminal state.\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    if (!all_ok) {
        std::cout << "CHAOS INVARIANT VIOLATION (see table above)\n";
        return 1;
    }
    return 0;
}
