// Ablation A1 — how closely does the paper's block-quota scheduling track
// ideal weighted fair queueing?
//
// We feed the identical arrival sequence to three disciplines:
//   * SFQ (packet-granularity weighted fair queueing, the Demers et al.
//     reference the paper builds on),
//   * WRR/DRR with per-round quanta equal to the block quotas (what the
//     Multi-Queue Block Generator does at block granularity),
//   * FIFO (vanilla Fabric).
// and report each class's service share over a fully-backlogged window plus
// the worst-case normalized-service gap (the WFQ fairness metric).
//
// Unlike the figure benches this one is purely synthetic (no simulator, no
// RNG), so instead of harness::run_sweep it drives the three disciplines
// directly through common/thread_pool.h — each discipline is an independent
// work unit writing its own pre-sized result slot.
#include <array>
#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "common/json.h"
#include "common/thread_pool.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "policy/block_formation_policy.h"
#include "wfq/wfq.h"

namespace {

/// Abstracts the three disciplines behind one enqueue/dequeue interface so
/// a single serve loop measures them all.
struct AnyScheduler {
    std::function<void(std::size_t, double, int)> enqueue;
    std::function<std::optional<fl::wfq::Scheduled<int>>()> dequeue;
};

struct DisciplineResult {
    std::array<double, 3> share = {0, 0, 0};
    double worst_gap = 0.0;  ///< max normalized-service gap; NaN = unbounded
};

DisciplineResult serve(AnyScheduler sched, bool track_gap, std::size_t backlog,
                       std::size_t serve_steps,
                       const std::array<double, 3>& weights) {
    for (std::size_t i = 0; i < backlog; ++i) {
        for (std::size_t flow = 0; flow < 3; ++flow) {
            sched.enqueue(flow, 1.0, static_cast<int>(i));
        }
    }
    std::array<double, 3> served = {0, 0, 0};
    DisciplineResult result;
    for (std::size_t step = 1; step <= serve_steps; ++step) {
        const auto item = sched.dequeue();
        served[item->flow] += 1.0;
        if (!track_gap) continue;
        for (std::size_t i = 0; i < 3; ++i) {
            for (std::size_t j = i + 1; j < 3; ++j) {
                const double gap =
                    std::abs(served[i] / weights[i] - served[j] / weights[j]);
                result.worst_gap = std::max(result.worst_gap, gap);
            }
        }
    }
    const double total = served[0] + served[1] + served[2];
    for (std::size_t i = 0; i < 3; ++i) result.share[i] = served[i] / total;
    if (!track_gap) result.worst_gap = std::nan("");
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fl;

    const auto cli = harness::parse_sweep_cli(argc, argv, 2024, "ablation_wfq");
    if (!cli.trace_path.empty() || !cli.timeseries_path.empty()) {
        // This bench is synthetic (no simulated network), so there is no
        // transaction lifecycle or gauge set to capture.
        std::cout << "note: --trace/--timeseries are ignored by ablation_wfq "
                     "(no simulated network)\n";
    }
    const std::vector<std::uint32_t> weights = {2, 3, 1};
    const policy::BlockFormationPolicy policy(weights);
    const auto fractions = policy.fractions();
    const std::size_t kBacklog = 30'000;  // per class
    const std::size_t kServe = 45'000;
    const std::array<double, 3> w = {2.0, 3.0, 1.0};

    harness::print_banner(std::cout,
                          "Ablation A1: block-quota WFQ vs ideal WFQ vs FIFO",
                          "policy 2:3:1, fully backlogged classes, unit cost");

    // Quantum per round = per-block quota (block size 500).
    const auto quotas = policy.quotas(500);
    const char* names[3] = {"SFQ (ideal WFQ)", "block-quota WRR", "FIFO"};
    const auto make_scheduler = [&](std::size_t d) -> AnyScheduler {
        if (d == 0) {
            auto s = std::make_shared<wfq::WfqScheduler<int>>(
                std::vector<double>{2.0, 3.0, 1.0});
            return {[s](std::size_t f, double c, int i) { s->enqueue(f, c, i); },
                    [s] { return s->dequeue(); }};
        }
        if (d == 1) {
            auto s = std::make_shared<wfq::WrrScheduler<int>>(
                std::vector<double>{static_cast<double>(quotas[0]),
                                    static_cast<double>(quotas[1]),
                                    static_cast<double>(quotas[2])},
                /*base_quantum=*/1.0);
            return {[s](std::size_t f, double c, int i) { s->enqueue(f, c, i); },
                    [s] { return s->dequeue(); }};
        }
        auto s = std::make_shared<wfq::FifoScheduler<int>>();
        return {[s](std::size_t f, double c, int i) { s->enqueue(f, c, i); },
                [s] { return s->dequeue(); }};
    };

    // One independent work unit per discipline, results slotted by index.
    std::vector<DisciplineResult> results(3);
    ThreadPool pool(cli.threads);
    parallel_for_each(pool, results.size(), [&](std::size_t d) {
        results[d] = serve(make_scheduler(d), /*track_gap=*/d < 2, kBacklog,
                           kServe, w);
    });

    harness::Table table({"discipline", "share hi", "share med", "share lo",
                          "ideal", "worst norm gap (pkts)"});
    for (std::size_t d = 0; d < 3; ++d) {
        table.add_row(
            {names[d], harness::fmt(results[d].share[0], 4),
             harness::fmt(results[d].share[1], 4),
             harness::fmt(results[d].share[2], 4),
             harness::fmt(fractions[0], 4) + "/" + harness::fmt(fractions[1], 4) +
                 "/" + harness::fmt(fractions[2], 4),
             d < 2 ? harness::fmt(results[d].worst_gap, 1)
                   : std::string("unbounded")});
    }
    table.print(std::cout);
    std::cout << "\nSFQ bounds the normalized-service gap by ~one packet per unit "
                 "weight;\nthe block-quota scheduler matches the weighted shares "
                 "exactly over whole\nblocks but allows gaps up to one block quota "
                 "within a block — the paper's\ngranularity trade-off.  FIFO gives "
                 "every class its *arrival* share instead\n(no isolation).\n";

    if (cli.json_enabled) {
        std::ofstream file(cli.json_path);
        if (file) {
            JsonWriter json(file);
            json.begin_object();
            json.field("bench", "ablation_wfq");
            json.key("results");
            json.begin_array();
            for (std::size_t d = 0; d < 3; ++d) {
                json.begin_object();
                json.field("discipline", names[d]);
                json.key("share");
                json.begin_array();
                for (const double s : results[d].share) json.value(s);
                json.end_array();
                json.field("worst_norm_gap", results[d].worst_gap);
                json.end_object();
            }
            json.end_array();
            json.end_object();
            file << "\n";
            std::cout << "per-point JSON written to " << cli.json_path << "\n";
        }
    }
    return 0;
}
