// Ablation A1 — how closely does the paper's block-quota scheduling track
// ideal weighted fair queueing?
//
// We feed the identical arrival sequence to three disciplines:
//   * SFQ (packet-granularity weighted fair queueing, the Demers et al.
//     reference the paper builds on),
//   * WRR/DRR with per-round quanta equal to the block quotas (what the
//     Multi-Queue Block Generator does at block granularity),
//   * FIFO (vanilla Fabric).
// and report each class's service share over a fully-backlogged window plus
// the worst-case normalized-service gap (the WFQ fairness metric).
#include <iostream>

#include "common/rng.h"
#include "harness/report.h"
#include "policy/block_formation_policy.h"
#include "wfq/wfq.h"

int main() {
    using namespace fl;

    const std::vector<std::uint32_t> weights = {2, 3, 1};
    const policy::BlockFormationPolicy policy(weights);
    const auto fractions = policy.fractions();
    const std::size_t kBacklog = 30'000;  // per class
    const std::size_t kServe = 45'000;

    harness::print_banner(std::cout,
                          "Ablation A1: block-quota WFQ vs ideal WFQ vs FIFO",
                          "policy 2:3:1, fully backlogged classes, unit cost");

    wfq::WfqScheduler<int> sfq({2.0, 3.0, 1.0});
    // Quantum per round = per-block quota (block size 500).
    const auto quotas = policy.quotas(500);
    wfq::WrrScheduler<int> wrr(
        {static_cast<double>(quotas[0]), static_cast<double>(quotas[1]),
         static_cast<double>(quotas[2])},
        /*base_quantum=*/1.0);
    wfq::FifoScheduler<int> fifo;

    Rng rng(2024);
    for (std::size_t i = 0; i < kBacklog; ++i) {
        for (std::size_t flow = 0; flow < 3; ++flow) {
            sfq.enqueue(flow, 1.0, static_cast<int>(i));
            wrr.enqueue(flow, 1.0, static_cast<int>(i));
            fifo.enqueue(flow, 1.0, static_cast<int>(i));
        }
    }

    std::vector<std::array<double, 3>> served(3, {0, 0, 0});
    std::vector<double> worst_gap(3, 0.0);
    const double wsum = 6.0;
    const std::array<double, 3> w = {2.0, 3.0, 1.0};

    for (std::size_t step = 1; step <= kServe; ++step) {
        const auto a = sfq.dequeue();
        const auto b = wrr.dequeue();
        const auto c = fifo.dequeue();
        served[0][a->flow] += 1.0;
        served[1][b->flow] += 1.0;
        served[2][c->flow] += 1.0;
        // Track max pairwise normalized-service gap for the two fair ones.
        for (int d = 0; d < 2; ++d) {
            for (std::size_t i = 0; i < 3; ++i) {
                for (std::size_t j = i + 1; j < 3; ++j) {
                    const double gap =
                        std::abs(served[d][i] / w[i] - served[d][j] / w[j]);
                    worst_gap[d] = std::max(worst_gap[d], gap);
                }
            }
        }
    }

    harness::Table table({"discipline", "share hi", "share med", "share lo",
                          "ideal", "worst norm gap (pkts)"});
    const char* names[3] = {"SFQ (ideal WFQ)", "block-quota WRR", "FIFO"};
    for (int d = 0; d < 3; ++d) {
        const double total = served[d][0] + served[d][1] + served[d][2];
        table.add_row(
            {names[d], harness::fmt(served[d][0] / total, 4),
             harness::fmt(served[d][1] / total, 4),
             harness::fmt(served[d][2] / total, 4),
             harness::fmt(fractions[0], 4) + "/" + harness::fmt(fractions[1], 4) +
                 "/" + harness::fmt(fractions[2], 4),
             d < 2 ? harness::fmt(worst_gap[d], 1) : std::string("unbounded")});
    }
    table.print(std::cout);
    std::cout << "\nSFQ bounds the normalized-service gap by ~one packet per unit "
                 "weight;\nthe block-quota scheduler matches the weighted shares "
                 "exactly over whole\nblocks but allows gaps up to one block quota "
                 "within a block — the paper's\ngranularity trade-off.  FIFO gives "
                 "every class its *arrival* share instead\n(no isolation).\n";
    return 0;
}
