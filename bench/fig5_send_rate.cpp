// Figure 5 — Relative latency with increasing send rate.
//
// Paper setup: send rates swept around the 500 tps capacity knee, arrivals
// 1:2:1, policy 2:3:1.  At each rate the latencies are normalized to the
// no-priority system *at that same rate*.
//
// Expected shape (paper §5.4):
//   * below 500 tps priorities barely matter (all classes ~ 1);
//   * from 500 tps the high class drops below 1, the low class climbs;
//   * the overhead gap between the with-priority system average and the
//     baseline shrinks as the rate grows.
#include "fig_common.h"

int main() {
    using namespace fl;
    using namespace fl::bench;

    const unsigned runs = harness::runs_from_env(3);
    const std::uint64_t total_txs = harness::total_txs_from_env(15'000);

    harness::print_banner(
        std::cout, "Figure 5: send rate vs relative latency",
        "arrivals 1:2:1, policy 2:3:1, per-rate no-priority baseline = 1");

    harness::Table table({"send rate (tps)", "high (rel)", "medium (rel)",
                          "low (rel)", "system avg (rel)", "baseline avg (s)"});
    for (const double rate : {250.0, 400.0, 500.0, 625.0, 750.0, 1000.0}) {
        const auto baseline =
            run_paper_experiment(paper_config(false), rate, total_txs, runs, 9200);
        const auto with =
            run_paper_experiment(paper_config(true), rate, total_txs, runs, 9200);
        print_consistency(with);
        const double base = baseline.overall_latency.mean();
        table.add_row({harness::fmt(rate, 0),
                       harness::fmt(with.priority_latency(0) / base, 3),
                       harness::fmt(with.priority_latency(1) / base, 3),
                       harness::fmt(with.priority_latency(2) / base, 3),
                       harness::fmt(with.overall_latency.mean() / base, 3),
                       harness::fmt(base, 3)});
    }
    table.print(std::cout);
    std::cout << "\n(paper Figure 5: below 500 tps priorities don't help — the "
                 "system is under\n capacity; from 500 tps high-priority "
                 "transactions benefit, and the relative\n overhead of the scheme "
                 "shrinks as the send rate grows.)\n";
    return 0;
}
