// Figure 5 — Relative latency with increasing send rate.
//
// Paper setup: send rates swept around the 500 tps capacity knee, arrivals
// 1:2:1, policy 2:3:1.  At each rate the latencies are normalized to the
// no-priority system *at that same rate*.
//
// Expected shape (paper §5.4):
//   * below 500 tps priorities barely matter (all classes ~ 1);
//   * from 500 tps the high class drops below 1, the low class climbs;
//   * the overhead gap between the with-priority system average and the
//     baseline shrinks as the rate grows.
//
// Sweep layout: two points per rate (baseline, with-priority), paired
// through a shared seed_group.  This is the sweep the determinism
// regression test mirrors (tests/harness/sweep_test.cpp): the JSON output
// here is byte-identical across --threads for a fixed --seed.
#include "fig_common.h"

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli = harness::parse_sweep_cli(argc, argv, 9200, "fig5_send_rate");
    const unsigned runs = cli.runs_or(3);
    const std::uint64_t total_txs = cli.txs_or(15'000);
    const std::vector<double> rates = {250.0, 400.0, 500.0, 625.0, 750.0, 1000.0};

    harness::print_banner(
        std::cout, "Figure 5: send rate vs relative latency",
        "arrivals 1:2:1, policy 2:3:1, per-rate no-priority baseline = 1");

    harness::SweepSpec sweep;
    sweep.name = "fig5_send_rate";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    for (std::size_t s = 0; s < rates.size(); ++s) {
        for (const bool priority : {false, true}) {
            sweep.points.push_back(paper_point(
                "rate=" + harness::fmt(rates[s], 0) +
                    (priority ? "/priority" : "/baseline"),
                {{"send_rate", rates[s]},
                 {"priority_enabled", priority ? 1.0 : 0.0}},
                paper_config(priority), rates[s], total_txs, runs,
                /*seed_group=*/s));
        }
    }

    const auto results = run_timed_sweep(sweep, cli);

    harness::Table table({"send rate (tps)", "high (rel)", "medium (rel)",
                          "low (rel)", "system avg (rel)", "baseline avg (s)"});
    for (std::size_t s = 0; s < rates.size(); ++s) {
        const auto& baseline = results[2 * s].result;
        const auto& with = results[2 * s + 1].result;
        print_consistency(with);
        const double base = baseline.overall_latency.mean();
        table.add_row({harness::fmt(rates[s], 0),
                       harness::fmt(with.priority_latency(0) / base, 3),
                       harness::fmt(with.priority_latency(1) / base, 3),
                       harness::fmt(with.priority_latency(2) / base, 3),
                       harness::fmt(with.overall_latency.mean() / base, 3),
                       harness::fmt(base, 3)});
    }
    table.print(std::cout);
    std::cout << "\n(paper Figure 5: below 500 tps priorities don't help — the "
                 "system is under\n capacity; from 500 tps high-priority "
                 "transactions benefit, and the relative\n overhead of the scheme "
                 "shrinks as the send rate grows.)\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    return 0;
}
