// Shared setup for the figure-reproduction benches.
//
// Defaults mirror the paper's §5.1: 4 organizations (one peer each), 3 OSNs,
// 3 clients, 3 priority levels, arrival ratio high:med:low = 1:2:1, block
// size 500, block timeout 1 s, default block formation policy 2:3:1,
// consolidation k-of-n (k=2), send rate 500 tps, 15 000 transactions per
// run, averaged over several runs (paper: 10; default here: 3, override via
// FAIRLEDGER_RUNS / FAIRLEDGER_TOTAL_TXS or the --runs/--txs flags).
//
// Every bench drives its grid through harness::run_sweep: points execute in
// parallel (--threads) with per-point seeds derived from --seed, and the
// tables/JSON below are identical at any thread count (see
// src/harness/sweep.h for the determinism contract).
//
// The orderer consume loop is calibrated to ~2 ms/record so system capacity
// sits at the paper's 500 tps knee (DESIGN.md §6).
#pragma once

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/fabric_network.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/sweep.h"
#include "harness/workload.h"

namespace fl::bench {

inline core::NetworkConfig paper_config(bool priority_enabled,
                                        const std::string& block_policy = "2:3:1") {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.peers_per_org = 1;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.channel.priority_enabled = priority_enabled;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse(block_policy);
    cfg.channel.consolidation_spec = "kofn:2";
    cfg.channel.block_size = 500;
    cfg.channel.block_timeout = Duration::seconds(1);
    return cfg;
}

/// The paper's workload: total rate split evenly over the clients, each
/// submitting the 1:2:1 high:med:low chaincode mix.
inline harness::Workload paper_workload(std::size_t clients, double total_tps,
                                        std::uint64_t total_txs,
                                        std::vector<double> arrival_ratio = {1, 2, 1}) {
    harness::Workload w;
    for (std::size_t c = 0; c < clients; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = total_tps / static_cast<double>(clients);
        load.generate = harness::priority_class_mix(arrival_ratio);
        w.loads.push_back(std::move(load));
    }
    w.distribute_total(total_txs);
    return w;
}

/// One sweep point running the paper workload against `cfg`.  Points with
/// equal `seed_group` get identical derived seeds — pair each treatment
/// point with the baseline it is normalized against.
inline harness::ExperimentPoint paper_point(
    std::string label, std::vector<std::pair<std::string, double>> params,
    core::NetworkConfig cfg, double total_tps, std::uint64_t total_txs,
    unsigned runs, std::uint64_t seed_group) {
    harness::ExperimentPoint point;
    point.label = std::move(label);
    point.params = std::move(params);
    point.spec.config = std::move(cfg);
    const std::size_t clients = point.spec.config.clients;
    point.spec.make_workload = [clients, total_tps, total_txs] {
        return paper_workload(clients, total_tps, total_txs);
    };
    point.spec.runs = runs;
    point.seed_group = seed_group;
    return point;
}

/// Runs the sweep with wall-clock timing and a stdout footer; the timing
/// never enters the JSON (it would break byte-identity across --threads).
/// When --trace/--timeseries were given, instruments the selected point and
/// writes the capture files after the sweep drains.  --audit/--audit-window
/// attach the fairness-audit accountant to every point (reports land in the
/// per-point JSON as "audit_runs").
inline std::vector<harness::PointResult> run_timed_sweep(
    harness::SweepSpec& sweep, const harness::SweepCli& cli) {
    harness::TraceCapture capture;
    harness::apply_audit_cli(sweep, cli);
    harness::arm_trace_capture(sweep, cli, capture, std::cout);
    const auto started = std::chrono::steady_clock::now();
    auto results = harness::run_sweep(sweep);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
            .count();
    const unsigned threads =
        sweep.threads != 0 ? sweep.threads
                           : std::max(1u, std::thread::hardware_concurrency());
    harness::print_sweep_footer(std::cout, results.size(), threads, wall);
    harness::emit_trace_files(cli, capture, std::cout);
    return results;
}

inline void print_consistency(const harness::AggregateResult& r) {
    if (!r.all_consistent) {
        std::cout << "WARNING: consistency check failed (peer chains / OSN "
                     "blocks diverged)\n";
    }
}

}  // namespace fl::bench
