// Shared setup for the figure-reproduction benches.
//
// Defaults mirror the paper's §5.1: 4 organizations (one peer each), 3 OSNs,
// 3 clients, 3 priority levels, arrival ratio high:med:low = 1:2:1, block
// size 500, block timeout 1 s, default block formation policy 2:3:1,
// consolidation k-of-n (k=2), send rate 500 tps, 15 000 transactions per
// run, averaged over several runs (paper: 10; default here: 3, override via
// FAIRLEDGER_RUNS / FAIRLEDGER_TOTAL_TXS).
//
// The orderer consume loop is calibrated to ~2 ms/record so system capacity
// sits at the paper's 500 tps knee (DESIGN.md §6).
#pragma once

#include <iostream>
#include <string>

#include "core/fabric_network.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workload.h"

namespace fl::bench {

inline core::NetworkConfig paper_config(bool priority_enabled,
                                        const std::string& block_policy = "2:3:1") {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.peers_per_org = 1;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.channel.priority_enabled = priority_enabled;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse(block_policy);
    cfg.channel.consolidation_spec = "kofn:2";
    cfg.channel.block_size = 500;
    cfg.channel.block_timeout = Duration::seconds(1);
    return cfg;
}

/// The paper's workload: total rate split evenly over the clients, each
/// submitting the 1:2:1 high:med:low chaincode mix.
inline harness::Workload paper_workload(std::size_t clients, double total_tps,
                                        std::uint64_t total_txs,
                                        std::vector<double> arrival_ratio = {1, 2, 1}) {
    harness::Workload w;
    for (std::size_t c = 0; c < clients; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = total_tps / static_cast<double>(clients);
        load.generate = harness::priority_class_mix(arrival_ratio);
        w.loads.push_back(std::move(load));
    }
    w.distribute_total(total_txs);
    return w;
}

inline harness::AggregateResult run_paper_experiment(core::NetworkConfig cfg,
                                                     double total_tps,
                                                     std::uint64_t total_txs,
                                                     unsigned runs,
                                                     std::uint64_t base_seed) {
    harness::ExperimentSpec spec;
    spec.config = std::move(cfg);
    const std::size_t clients = spec.config.clients;
    spec.make_workload = [clients, total_tps, total_txs] {
        return paper_workload(clients, total_tps, total_txs);
    };
    spec.runs = runs;
    spec.base_seed = base_seed;
    return harness::run_experiment(spec);
}

inline void print_consistency(const harness::AggregateResult& r) {
    if (!r.all_consistent) {
        std::cout << "WARNING: consistency check failed (peer chains / OSN "
                     "blocks diverged)\n";
    }
}

}  // namespace fl::bench
