// Microbenchmarks M6 — simulator event dispatch under the many-small-windows
// regime of the partitioned engine (DESIGN.md §17).
//
// BM_SimulatorDispatch is the before/after for the SmallFn satellite: the
// simulator's EventFn used to be std::function<void()>, whose inline buffer
// (typically 16 bytes) heap-allocates for the simulation's usual captures
// (`this` + a few ids / payload handles).  SmallFn's 64-byte inline buffer
// keeps those off the allocator.  BM_FunctorRoundTrip isolates the functor
// construct/move/invoke cost itself at the same capture sizes so the two
// storage strategies can be compared directly without the queue in the way.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>

#include "sim/simulator.h"

namespace {

using namespace fl;

/// Capture payload sized by the benchmark argument: 24 bytes (3 words, the
/// typical `this` + id + handle closure) fits std::function's inline buffer
/// on neither libstdc++ nor libc++; 56 bytes is a large-but-common closure
/// that still fits SmallFn inline.
template <std::size_t Words>
struct Payload {
    std::uint64_t w[Words];
};

template <std::size_t Words>
void schedule_chain(sim::Simulator& sim, std::uint64_t& sink,
                    std::uint64_t remaining) {
    Payload<Words> p{};
    p.w[0] = remaining;
    sim.schedule_after(Duration::micros(1), [&sim, &sink, p] {
        sink += p.w[0];
        if (p.w[0] > 0) schedule_chain<Words>(sim, sink, p.w[0] - 1);
    });
}

/// End-to-end dispatch: schedule + pop + invoke through the real event
/// queue, with each event scheduling its successor (the simulator's usual
/// self-perpetuating pattern — timers, consume loops, retries).
template <std::size_t Words>
void BM_SimulatorDispatch(benchmark::State& state) {
    const std::uint64_t chain = 4096;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sim::Simulator sim;
        schedule_chain<Words>(sim, sink, chain);
        sim.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * chain));
}
BENCHMARK(BM_SimulatorDispatch<3>);
BENCHMARK(BM_SimulatorDispatch<7>);

/// Functor storage round trip (construct → move → invoke → destroy) for the
/// two storage strategies at the same capture size, no event queue.
template <typename FnType, std::size_t Words>
void functor_round_trip(benchmark::State& state) {
    std::uint64_t sink = 0;
    Payload<Words> p{};
    for (auto _ : state) {
        p.w[0] = sink;
        FnType fn = [&sink, p] { sink += p.w[0] + 1; };
        FnType moved = std::move(fn);
        moved();
        benchmark::DoNotOptimize(moved);
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

template <std::size_t Words>
void BM_FunctorRoundTrip_StdFunction(benchmark::State& state) {
    functor_round_trip<std::function<void()>, Words>(state);
}
template <std::size_t Words>
void BM_FunctorRoundTrip_SmallFn(benchmark::State& state) {
    functor_round_trip<sim::SmallFn, Words>(state);
}
BENCHMARK(BM_FunctorRoundTrip_StdFunction<3>);
BENCHMARK(BM_FunctorRoundTrip_SmallFn<3>);
BENCHMARK(BM_FunctorRoundTrip_StdFunction<7>);
BENCHMARK(BM_FunctorRoundTrip_SmallFn<7>);

}  // namespace
