// Channel-scaling sweep + serial-vs-parallel equivalence gate (A10).
//
// Sweeps the channel count 1 → 16 (paper-default per-channel config and
// workload) and runs every point through BOTH engines of
// core::MultiChannelNetwork:
//
//   serial    — channels advance in index order within each sync window;
//   parallel  — one pool worker per channel inside each window (--threads).
//
// Per point it compares every per-channel artifact byte for byte: the
// metrics JSON, the trace JSONL, the chain/state fingerprints, and the
// cross-channel meter series.  Any divergence prints CHANNEL EQUIVALENCE
// VIOLATION and exits 1 — channel sharding is an engine optimization, never
// an observable (DESIGN.md §16).  The 1-channel point is additionally
// compared against the legacy single-network harness (harness::run_once):
// same metrics JSON, same (untagged) trace bytes, same fingerprints.
//
// Wall-clock timings and the speedup column are host-dependent and stay on
// stdout only; the BENCH_*.json bytes depend on --seed alone.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fig_common.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "harness/channels.h"
#include "obs/trace.h"

namespace {

using Clock = std::chrono::steady_clock;

std::string hex64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

struct EngineRun {
    fl::harness::MultiChannelResult result;
    double wall = 0.0;  ///< host-dependent; stdout only, never JSON
};

EngineRun run_engine(const fl::harness::MultiChannelSpec& spec,
                     fl::ThreadPool* pool) {
    EngineRun er;
    const auto started = Clock::now();
    er.result = fl::harness::run_multi_channel(spec, pool);
    er.wall = std::chrono::duration<double>(Clock::now() - started).count();
    return er;
}

/// Byte/field comparison of two engine results; returns human-readable
/// divergence descriptions (empty = equivalent).
std::vector<std::string> diff_runs(const fl::harness::MultiChannelResult& a,
                                   const fl::harness::MultiChannelResult& b) {
    std::vector<std::string> diffs;
    if (a.channels.size() != b.channels.size()) {
        diffs.push_back("channel count mismatch");
        return diffs;
    }
    for (std::size_t i = 0; i < a.channels.size(); ++i) {
        const auto& ca = a.channels[i];
        const auto& cb = b.channels[i];
        const std::string tag = "ch" + std::to_string(ca.id.value());
        if (ca.metrics_json != cb.metrics_json) diffs.push_back(tag + " metrics JSON");
        if (ca.trace_jsonl != cb.trace_jsonl) diffs.push_back(tag + " trace JSONL");
        if (ca.chain_fingerprint != cb.chain_fingerprint) {
            diffs.push_back(tag + " chain fingerprint");
        }
        if (ca.state_fingerprint != cb.state_fingerprint) {
            diffs.push_back(tag + " state fingerprint");
        }
        if (ca.blocks != cb.blocks) diffs.push_back(tag + " block height");
        if (!ca.consistent || !cb.consistent) diffs.push_back(tag + " inconsistent");
    }
    if (a.events_executed != b.events_executed) diffs.push_back("event count");
    if (a.windows != b.windows) diffs.push_back("window count");
    if (a.meter.windows.size() != b.meter.windows.size()) {
        diffs.push_back("meter window count");
    } else {
        for (std::size_t w = 0; w < a.meter.windows.size(); ++w) {
            const auto& wa = a.meter.windows[w];
            const auto& wb = b.meter.windows[w];
            if (wa.end != wb.end ||
                wa.committed_per_channel != wb.committed_per_channel ||
                wa.endorse_cpu_per_org != wb.endorse_cpu_per_org ||
                wa.completed_per_client != wb.completed_per_client ||
                wa.channel_jain != wb.channel_jain ||
                wa.client_jain != wb.client_jain) {
                diffs.push_back("meter window " + std::to_string(w));
                break;
            }
        }
    }
    if (a.meter.committed_per_channel != b.meter.committed_per_channel ||
        a.meter.completed_per_client != b.meter.completed_per_client ||
        a.meter.endorse_cpu_per_org != b.meter.endorse_cpu_per_org) {
        diffs.push_back("meter cumulative totals");
    }
    return diffs;
}

/// The 1-channel legacy gate: the sharded engine's only channel must emit
/// the exact bytes of today's single-network harness on the same seed.
std::vector<std::string> diff_vs_legacy(
    const fl::harness::ChannelRunResult& ch, const fl::core::NetworkConfig& cfg,
    const std::function<fl::harness::Workload()>& make_workload,
    std::uint64_t seed) {
    fl::harness::ExperimentSpec spec;
    spec.config = cfg;
    spec.make_workload = make_workload;
    fl::obs::TraceSink sink;
    spec.instrument = [&sink](fl::core::FabricNetwork& net, unsigned) {
        net.set_trace_sink(&sink);
    };
    std::uint64_t chain_fp = 0;
    std::uint64_t state_fp = 0;
    spec.run_probe = [&](fl::core::FabricNetwork& net,
                         std::map<std::string, double>&) {
        chain_fp = net.peers().front()->chain().chain_fingerprint();
        state_fp = net.peers().front()->state().fingerprint();
    };
    const fl::harness::RunResult legacy = fl::harness::run_once(spec, seed);

    std::vector<std::string> diffs;
    std::ostringstream metrics_os;
    fl::core::write_metrics_json(metrics_os, legacy.metrics, nullptr);
    if (ch.metrics_json != metrics_os.str()) diffs.push_back("legacy metrics JSON");
    std::ostringstream trace_os;
    sink.write_jsonl(trace_os);
    if (ch.trace_jsonl != trace_os.str()) diffs.push_back("legacy trace JSONL");
    if (ch.chain_fingerprint != chain_fp) diffs.push_back("legacy chain fingerprint");
    if (ch.state_fingerprint != state_fp) diffs.push_back("legacy state fingerprint");
    return diffs;
}

}  // namespace

int main(int argc, char** argv) {
    fl::harness::BenchFlag channels_flag{
        "--channels", "--channels N     largest channel count (default 16)", 16,
        /*positive=*/true, /*max=*/64};
    fl::harness::BenchFlag window_flag{
        "--window-ms", "--window-ms W   sync window in ms (default 250)", 250,
        /*positive=*/true, /*max=*/60000};
    const fl::harness::SweepCli cli = fl::harness::parse_sweep_cli(
        argc, argv, /*default_seed=*/42, "scale_channels",
        {&channels_flag, &window_flag});

    const std::uint64_t txs_per_channel = cli.txs_or(3000);
    const double tps = 500.0;

    std::vector<std::size_t> counts;
    for (std::size_t c : {1u, 2u, 4u, 8u, 16u}) {
        if (c <= channels_flag.value) counts.push_back(c);
    }

    fl::harness::print_banner(
        std::cout, "scale_channels: channel-sharded engine scaling",
        "serial vs parallel byte equivalence at every channel count");

    fl::ThreadPool pool(cli.threads);
    const unsigned pool_size = static_cast<unsigned>(pool.size());

    fl::harness::Table table({"channels", "committed", "windows", "jain(ch)",
                              "jain(client)", "serial s*", "parallel s*",
                              "speedup*", "equal"});

    std::ostringstream json;
    fl::JsonWriter jw(json);
    jw.begin_object();
    jw.field("bench", "scale_channels");
    jw.field("base_seed", cli.base_seed);
    jw.field("window_ms", window_flag.value);
    jw.field("txs_per_channel", txs_per_channel);
    jw.key("points");
    jw.begin_array();

    bool all_ok = true;
    const auto started = Clock::now();
    for (const std::size_t n : counts) {
        fl::harness::MultiChannelSpec spec;
        spec.config = fl::core::MultiChannelConfig::uniform(
            fl::bench::paper_config(/*priority_enabled=*/true), n);
        spec.config.sync_window =
            fl::Duration::millis(static_cast<std::int64_t>(window_flag.value));
        const std::size_t clients = spec.config.base.clients;
        spec.make_workload = [clients, tps, txs_per_channel](std::size_t) {
            return fl::bench::paper_workload(clients, tps, txs_per_channel);
        };
        spec.seed = cli.base_seed;
        spec.capture_trace = true;

        const EngineRun serial = run_engine(spec, nullptr);
        const EngineRun parallel = run_engine(spec, &pool);

        std::vector<std::string> diffs =
            diff_runs(serial.result, parallel.result);
        if (n == 1) {
            const auto make_one = [&spec] { return spec.make_workload(0); };
            const auto legacy_diffs =
                diff_vs_legacy(parallel.result.channels[0],
                               spec.config.channel_config(0), make_one,
                               spec.seed);
            diffs.insert(diffs.end(), legacy_diffs.begin(), legacy_diffs.end());
        }
        for (const std::string& d : diffs) {
            std::cout << "DIVERGENCE (" << n << " channels): " << d << "\n";
        }
        const bool ok = diffs.empty();
        all_ok = all_ok && ok;

        const auto& meter = parallel.result.meter;
        std::uint64_t committed = 0;
        for (const std::uint64_t c : meter.committed_per_channel) committed += c;

        table.add_row(
            {std::to_string(n), std::to_string(committed),
             std::to_string(parallel.result.windows),
             fl::harness::fmt(meter.channel_jain_overall(), 3),
             fl::harness::fmt(meter.client_jain_overall(), 3),
             fl::harness::fmt(serial.wall, 2), fl::harness::fmt(parallel.wall, 2),
             fl::harness::fmt(parallel.wall > 0.0 ? serial.wall / parallel.wall
                                                  : 0.0,
                              2),
             ok ? "OK" : "MISMATCH"});

        jw.begin_object();
        jw.field("channels", static_cast<std::uint64_t>(n));
        jw.field("windows", parallel.result.windows);
        jw.field("events", parallel.result.events_executed);
        jw.field("committed_total", committed);
        jw.key("committed_per_channel");
        jw.begin_array();
        for (const std::uint64_t c : meter.committed_per_channel) jw.value(c);
        jw.end_array();
        jw.field("channel_jain", meter.channel_jain_overall());
        jw.field("client_jain", meter.client_jain_overall());
        jw.field("org_cpu_jain", meter.org_cpu_jain_overall());
        jw.field("channel_jain_min", meter.channel_jain_min);
        jw.field("client_jain_min", meter.client_jain_min);
        jw.key("chain_fingerprints");
        jw.begin_array();
        for (const auto& ch : parallel.result.channels) {
            jw.value(hex64(ch.chain_fingerprint));
        }
        jw.end_array();
        jw.field("equal", ok);
        jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    json << "\n";

    table.print(std::cout);
    const double wall =
        std::chrono::duration<double>(Clock::now() - started).count();
    std::cout << "\n*wall-clock columns are host-dependent (stdout only, never "
                 "JSON).  Pool: "
              << pool_size << " worker(s).\n";
    fl::harness::print_sweep_footer(std::cout, counts.size(), pool_size, wall);

    if (cli.json_enabled && !cli.json_path.empty()) {
        std::ofstream out(cli.json_path);
        out << json.str();
        std::cout << "wrote " << cli.json_path << "\n";
    }

    if (!all_ok) {
        std::cout << "CHANNEL EQUIVALENCE VIOLATION (see divergences above)\n";
        return 1;
    }
    return 0;
}
