// Ablation A4 — priority consolidation policies under endorser disagreement
// (paper §3.2).
//
// When endorsers assign priorities dynamically (load, local heuristics),
// their votes differ.  The consolidation policy decides the outcome:
//   * k-of-n match is strict — transactions whose votes never reach k-way
//     agreement are rejected before ordering;
//   * average/median always produce a value but can drift from the
//     deploy-time intent.
//
// We sweep the endorser disagreement probability (NoisyCalculator) and
// report, per policy: the rejection rate, how often the consolidated value
// matches the static deploy-time priority, and end-to-end latency.
//
// Sweep layout: one point per (policy, flip probability); the tx_probe
// counts transactions whose consolidated priority matches the deploy-time
// intent, the rejection count comes from the OSN consolidation failures.
// All points share seed_group 0 so every policy judges the same votes.
#include "fig_common.h"

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli =
        harness::parse_sweep_cli(argc, argv, 31337, "ablation_consolidation");
    const unsigned runs = cli.runs_or(1);
    const std::uint64_t total_txs = cli.txs_or(4'000);
    const std::vector<std::string> policies = {"kofn:2", "kofn:3", "average",
                                               "median", "best"};
    const std::vector<double> flip_probabilities = {0.0, 0.2, 0.5};

    harness::print_banner(
        std::cout, "Ablation A4: consolidation policies vs endorser disagreement",
        "4 endorsers vote, NoisyCalculator flips a vote +/-1 level with prob. p");

    harness::SweepSpec sweep;
    sweep.name = "ablation_consolidation";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    for (const std::string& policy : policies) {
        for (const double p : flip_probabilities) {
            harness::ExperimentPoint point;
            point.label = policy + "/p=" + harness::fmt(p, 1);
            point.params = {{"flip_probability", p}};
            auto cfg = paper_config(true);
            cfg.channel.consolidation_spec = policy;
            cfg.channel.block_size = 100;
            cfg.channel.block_timeout = Duration::millis(500);
            // Each endorser gets its own vote stream; the shared counter is
            // only touched by the sequential per-run network builds.
            auto calc_seed = std::make_shared<std::uint64_t>(977);
            cfg.calculator_factory = [p, calc_seed] {
                return std::make_unique<peer::NoisyCalculator>(
                    std::make_unique<peer::StaticChaincodeCalculator>(), p,
                    Rng((*calc_seed)++));
            };
            point.spec.config = std::move(cfg);
            point.spec.make_workload = [total_txs] {
                return paper_workload(3, 300.0, total_txs);
            };
            point.spec.runs = runs;
            point.spec.tx_probe = [](const client::TxRecord& r,
                                     core::FabricNetwork& net,
                                     std::map<std::string, double>& extra) {
                if (r.failed_before_ordering || !is_valid(r.code)) return;
                if (r.priority == net.registry().static_priority(r.chaincode)) {
                    extra["intent_matched"] += 1.0;
                }
            };
            point.seed_group = 0;
            sweep.points.push_back(std::move(point));
        }
    }

    const auto results = run_timed_sweep(sweep, cli);

    harness::Table table({"policy", "p(flip)", "rejected %", "intent match %",
                          "committed", "avg latency (s)"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i].result;
        const auto committed = static_cast<double>(r.total_committed);
        const double rejected_pct =
            100.0 * static_cast<double>(r.total_consolidation_failures) /
            static_cast<double>(total_txs * r.overall_latency.runs());
        const double match_pct =
            committed > 0 ? 100.0 * r.extra_total("intent_matched") / committed
                          : 0.0;
        table.add_row({policies[i / flip_probabilities.size()],
                       harness::fmt(flip_probabilities[i % flip_probabilities.size()], 1),
                       harness::fmt(rejected_pct, 1),
                       harness::fmt(match_pct, 1),
                       std::to_string(r.total_committed),
                       harness::fmt(r.overall_latency.mean(), 3)});
    }
    table.print(std::cout);
    std::cout << "\nStrict agreement (kofn:3) starts rejecting transactions as "
                 "endorsers disagree;\naggregation policies (average/median) accept "
                 "everything and keep the intended\npriority for the vast majority "
                 "— the robustness/strictness trade-off of §3.2.\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    return 0;
}
