// Ablation A4 — priority consolidation policies under endorser disagreement
// (paper §3.2).
//
// When endorsers assign priorities dynamically (load, local heuristics),
// their votes differ.  The consolidation policy decides the outcome:
//   * k-of-n match is strict — transactions whose votes never reach k-way
//     agreement are rejected before ordering;
//   * average/median always produce a value but can drift from the
//     deploy-time intent.
//
// We sweep the endorser disagreement probability (NoisyCalculator) and
// report, per policy: the rejection rate, how often the consolidated value
// matches the static deploy-time priority, and end-to-end latency.
#include "fig_common.h"

namespace {

struct Outcome {
    double rejected_pct = 0.0;
    double match_pct = 0.0;
    double avg_latency = 0.0;
    std::uint64_t committed = 0;
};

Outcome run(const std::string& consolidation, double flip_probability,
            std::uint64_t total_txs, std::uint64_t seed) {
    using namespace fl;
    auto cfg = bench::paper_config(true);
    cfg.seed = seed;
    cfg.channel.consolidation_spec = consolidation;
    cfg.channel.block_size = 100;
    cfg.channel.block_timeout = Duration::millis(500);
    auto calc_seed = std::make_shared<std::uint64_t>(seed * 977);
    cfg.calculator_factory = [flip_probability, calc_seed] {
        return std::make_unique<peer::NoisyCalculator>(
            std::make_unique<peer::StaticChaincodeCalculator>(), flip_probability,
            Rng((*calc_seed)++));
    };
    core::FabricNetwork net(cfg);

    const auto& registry = net.registry();
    std::uint64_t matched = 0;
    std::uint64_t committed = 0;
    RunningStats latency;
    net.set_tx_sink([&](const client::TxRecord& r) {
        if (r.failed_before_ordering || !is_valid(r.code)) return;
        ++committed;
        latency.add(r.latency().as_seconds());
        if (r.priority == registry.static_priority(r.chaincode)) {
            ++matched;
        }
    });

    harness::WorkloadDriver driver(net, bench::paper_workload(3, 300.0, total_txs),
                                   Rng(seed));
    driver.start();
    net.run();

    std::uint64_t rejected = 0;
    for (const auto& osn : net.osns()) {
        rejected += osn->consolidation_failures();
    }
    Outcome out;
    out.committed = committed;
    out.rejected_pct = 100.0 * static_cast<double>(rejected) /
                       static_cast<double>(total_txs);
    out.match_pct = committed > 0 ? 100.0 * static_cast<double>(matched) /
                                        static_cast<double>(committed)
                                  : 0.0;
    out.avg_latency = latency.mean();
    return out;
}

}  // namespace

int main() {
    using namespace fl;

    const std::uint64_t total_txs = harness::total_txs_from_env(4'000);
    harness::print_banner(
        std::cout, "Ablation A4: consolidation policies vs endorser disagreement",
        "4 endorsers vote, NoisyCalculator flips a vote +/-1 level with prob. p");

    harness::Table table({"policy", "p(flip)", "rejected %", "intent match %",
                          "committed", "avg latency (s)"});
    for (const char* policy : {"kofn:2", "kofn:3", "average", "median", "best"}) {
        for (const double p : {0.0, 0.2, 0.5}) {
            const Outcome out = run(policy, p, total_txs, 31337);
            table.add_row({policy, harness::fmt(p, 1),
                           harness::fmt(out.rejected_pct, 1),
                           harness::fmt(out.match_pct, 1),
                           std::to_string(out.committed),
                           harness::fmt(out.avg_latency, 3)});
        }
    }
    table.print(std::cout);
    std::cout << "\nStrict agreement (kofn:3) starts rejecting transactions as "
                 "endorsers disagree;\naggregation policies (average/median) accept "
                 "everything and keep the intended\npriority for the vast majority "
                 "— the robustness/strictness trade-off of §3.2.\n";
    return 0;
}
