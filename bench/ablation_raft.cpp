// Ablation A9 — Raft ordering backend: leader-failover safety gate.
//
// Replays three chaos mixes against the Raft backend over the seed grid
// {1, 7, 42, 1234}:
//   leader_crash    two leader kills mid-block-stream, cluster restarted
//   partition       minority partitions around the leader, then healed
//   rolling_restart every Raft node crashed and revived in sequence, with
//                   an OSN crash/replay overlapping the churn
// and asserts the safety properties on every run:
//   1. prefix-consistent block sequences across OSNs (identical once every
//      crashed OSN has replayed) with zero replay hash mismatches;
//   2. every committed ledger's hash chain verifies;
//   3. no transaction commits twice;
//   4. every client submission reaches exactly one terminal state;
//   5. Raft log matching over the committed prefix across cluster nodes,
//      with no submission stuck in flight (TTC markers applied exactly once
//      under leader change — otherwise block cuts diverge and (1) fails).
// On top of the chaos grid it checks the backend-equivalence contract
// (fault-free Raft byte-identical to mq: metrics JSON + ledger fingerprint)
// and rerun determinism (every chaos cell run twice must match byte for
// byte).  Exits non-zero on any violation, so this is the CI chaos gate for
// the ordering backend; the JSON is byte-identical at any --threads value.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/fabric_network.h"
#include "harness/report.h"
#include "harness/workload.h"

namespace {

using namespace fl;

constexpr std::uint64_t kSeeds[] = {1, 7, 42, 1234};
constexpr std::uint64_t kTotalTxs = 600;
constexpr double kTpsPerClient = 50.0;

core::NetworkConfig base_config(std::uint64_t seed,
                                orderer::OrderingBackendKind backend) {
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = seed;
    cfg.endorsement_k = 2;
    cfg.ordering_backend = backend;
    cfg.channel.priority_enabled = true;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 50;
    cfg.channel.block_timeout = Duration::millis(200);
    client::RetryParams& retry = cfg.client_params.retry;
    retry.enabled = true;
    retry.endorsement_timeout = Duration::millis(300);
    retry.max_endorse_retries = 3;
    retry.commit_timeout = Duration::seconds(3);
    retry.max_resubmissions = 3;
    retry.backoff_base = Duration::millis(50);
    return cfg;
}

std::vector<fault::ScheduledFault> mix_schedule(const std::string& mix) {
    using fault::FaultKind;
    std::vector<fault::ScheduledFault> s;
    if (mix == "leader_crash") {
        s = {{Duration::millis(900), FaultKind::kRaftLeaderKill, 0},
             {Duration::millis(1700), FaultKind::kRaftNodeRestart, raft::kAllNodes},
             {Duration::millis(2600), FaultKind::kRaftLeaderKill, 0},
             {Duration::millis(3400), FaultKind::kRaftNodeRestart, raft::kAllNodes}};
    } else if (mix == "partition") {
        s = {{Duration::millis(600), FaultKind::kRaftPartition, 0},
             {Duration::millis(1400), FaultKind::kRaftHeal, 0},
             {Duration::millis(2200), FaultKind::kRaftPartition, 1},
             {Duration::millis(3000), FaultKind::kRaftHeal, 0}};
    } else {  // rolling_restart
        s = {{Duration::millis(600), FaultKind::kRaftNodeCrash, 0},
             {Duration::millis(1200), FaultKind::kRaftNodeRestart, 0},
             {Duration::millis(1400), FaultKind::kOsnCrash, 1},
             {Duration::millis(1600), FaultKind::kRaftNodeCrash, 1},
             {Duration::millis(2200), FaultKind::kRaftNodeRestart, 1},
             {Duration::millis(2600), FaultKind::kRaftNodeCrash, 2},
             {Duration::millis(3000), FaultKind::kOsnRestart, 1},
             {Duration::millis(3200), FaultKind::kRaftNodeRestart, 2}};
    }
    return s;
}

struct RunResult {
    std::string metrics_json;
    std::uint64_t chain_fingerprint = 0;
    std::uint64_t committed = 0;
    std::uint64_t failed = 0;
    std::uint64_t leader_changes = 0;
    std::uint64_t elections = 0;
    std::uint64_t term = 0;
    std::uint64_t resubmissions = 0;
    std::uint64_t dup_commits_skipped = 0;
    std::vector<std::string> violations;
};

RunResult run_once(const core::NetworkConfig& cfg, bool chaos_checks) {
    core::FabricNetwork net(cfg);
    core::MetricsCollector metrics;
    std::uint64_t records = 0;
    net.set_tx_sink([&](const client::TxRecord& r) {
        metrics.record(r);
        ++records;
    });
    harness::Workload workload;
    for (std::size_t c = 0; c < net.clients().size(); ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = kTpsPerClient;
        load.generate = harness::priority_class_mix({1, 2, 1});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(kTotalTxs);
    harness::WorkloadDriver driver(net, std::move(workload), Rng(cfg.seed));
    driver.start();
    net.run();

    RunResult out;
    std::ostringstream os;
    core::write_metrics_json(os, metrics);
    out.metrics_json = os.str();
    out.chain_fingerprint = net.peers().front()->chain().chain_fingerprint();
    out.committed = metrics.committed_valid() + metrics.committed_invalid();
    out.failed = metrics.client_failures();

    auto fail = [&out](const std::string& what) { out.violations.push_back(what); };

    // (1) ordering-service agreement + replay integrity.
    if (!net.osn_blocks_prefix_consistent()) fail("osn_block_divergence");
    bool all_alive = true;
    for (const auto& osn : net.osns()) {
        if (osn->replay_hash_mismatches() != 0) fail("replay_hash_mismatch");
        all_alive = all_alive && osn->alive();
    }
    if (!all_alive) fail("osn_left_dead");
    if (all_alive && !net.osn_blocks_identical()) fail("osn_block_divergence_final");

    // (2) verified chains.
    for (const auto& peer : net.peers()) {
        if (!peer->chain().verify_chain()) fail("broken_hash_chain");
        if (peer->chain().height() == 0) fail("empty_chain");
    }

    // (3) no double commit.
    const ledger::BlockStore& chain = net.peers().front()->chain();
    std::set<TxId> committed_ids;
    for (std::size_t b = 0; b < chain.height(); ++b) {
        const ledger::Block& block = chain.at(b);
        for (std::size_t i = 0; i < block.transactions.size(); ++i) {
            if (block.validation_codes[i] == TxValidationCode::kValid &&
                !committed_ids.insert(block.transactions[i].tx_id()).second) {
                fail("double_commit");
            }
        }
    }

    // (4) exactly one terminal state per submission.
    std::uint64_t submitted = 0;
    for (const auto& client : net.clients()) {
        if (client->pending() != 0) fail("client_left_pending");
        if (client->submitted() !=
            client->completed() + client->client_side_failures()) {
            fail("terminal_state_accounting");
        }
        submitted += client->submitted();
    }
    if (metrics.total() != submitted || records != submitted) {
        fail("sink_accounting");
    }

    // (5) Raft safety.
    if (raft::RaftOrderingBackend* rb = net.raft_backend()) {
        out.leader_changes = rb->leader_changes();
        out.elections = rb->elections_started();
        out.term = rb->current_term();
        out.resubmissions = rb->leader_resubmissions();
        out.dup_commits_skipped = rb->duplicate_commits_skipped();
        if (!rb->committed_prefixes_consistent()) fail("raft_log_matching");
        if (rb->pending_submissions() != 0) fail("raft_submission_stuck");
        if (chaos_checks && rb->leader_changes() == 0) fail("no_failover_exercised");
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fl;

    unsigned threads = 0;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            threads = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        }
    }

    harness::print_banner(
        std::cout, "Ablation A9: Raft leader-failover safety gate",
        "3 chaos mixes x seeds {1,7,42,1234}, each run twice; plus mq "
        "equivalence");

    const std::vector<std::string> mixes = {"leader_crash", "partition",
                                            "rolling_restart"};

    // The grid: every (mix, seed) chaos cell twice (rerun determinism), plus
    // per seed one fault-free run on each backend (equivalence).  Results go
    // into pre-sized slots indexed by cell, so output bytes are independent
    // of --threads.
    struct ChaosCell {
        std::string mix;
        std::uint64_t seed = 0;
        RunResult first, second;
    };
    std::vector<ChaosCell> cells;
    for (const std::string& mix : mixes) {
        for (std::uint64_t seed : kSeeds) cells.push_back({mix, seed, {}, {}});
    }
    struct EquivCell {
        std::uint64_t seed = 0;
        RunResult mq, rf;
    };
    std::vector<EquivCell> equiv;
    for (std::uint64_t seed : kSeeds) equiv.push_back({seed, {}, {}});

    const std::size_t jobs = cells.size() + equiv.size();
    ThreadPool pool(threads);
    parallel_for_each(pool, jobs, [&](std::size_t j) {
        if (j < cells.size()) {
            ChaosCell& cell = cells[j];
            auto cfg = base_config(cell.seed, orderer::OrderingBackendKind::kRaft);
            cfg.faults.schedule = mix_schedule(cell.mix);
            cell.first = run_once(cfg, /*chaos_checks=*/true);
            cell.second = run_once(cfg, /*chaos_checks=*/true);
        } else {
            EquivCell& cell = equiv[j - cells.size()];
            cell.mq = run_once(
                base_config(cell.seed, orderer::OrderingBackendKind::kMq), false);
            cell.rf = run_once(
                base_config(cell.seed, orderer::OrderingBackendKind::kRaft), false);
        }
    });

    bool all_ok = true;
    harness::Table table({"mix", "seed", "committed", "failed", "elections",
                          "leader changes", "term", "resubmits", "dup skips",
                          "verdict"});
    for (ChaosCell& cell : cells) {
        if (cell.first.metrics_json != cell.second.metrics_json ||
            cell.first.chain_fingerprint != cell.second.chain_fingerprint) {
            cell.first.violations.push_back("rerun_divergence");
        }
        const bool ok = cell.first.violations.empty() &&
                        cell.second.violations.empty();
        all_ok = all_ok && ok;
        std::string verdict = "OK";
        if (!ok) {
            verdict = "VIOLATED:";
            for (const std::string& v : cell.first.violations) verdict += " " + v;
        }
        table.add_row({cell.mix, std::to_string(cell.seed),
                       std::to_string(cell.first.committed),
                       std::to_string(cell.first.failed),
                       std::to_string(cell.first.elections),
                       std::to_string(cell.first.leader_changes),
                       std::to_string(cell.first.term),
                       std::to_string(cell.first.resubmissions),
                       std::to_string(cell.first.dup_commits_skipped), verdict});
    }
    table.print(std::cout);

    harness::Table eq_table({"seed", "mq committed", "raft committed", "identical"});
    for (const EquivCell& cell : equiv) {
        const bool identical =
            cell.mq.metrics_json == cell.rf.metrics_json &&
            cell.mq.chain_fingerprint == cell.rf.chain_fingerprint &&
            cell.mq.violations.empty() && cell.rf.violations.empty() &&
            cell.rf.elections == 0;
        all_ok = all_ok && identical;
        eq_table.add_row({std::to_string(cell.seed),
                          std::to_string(cell.mq.committed),
                          std::to_string(cell.rf.committed),
                          identical ? "yes" : "NO"});
    }
    std::cout << "\nBackend equivalence (fault-free, byte-level):\n";
    eq_table.print(std::cout);

    // Deterministic JSON for the CI 1-vs-4-thread byte comparison.
    std::ostringstream json;
    json << "{\"bench\":\"ablation_raft\",\"total_txs\":" << kTotalTxs
         << ",\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const ChaosCell& cell = cells[i];
        json << (i ? "," : "") << "{\"mix\":\"" << cell.mix
             << "\",\"seed\":" << cell.seed
             << ",\"committed\":" << cell.first.committed
             << ",\"failed\":" << cell.first.failed
             << ",\"elections\":" << cell.first.elections
             << ",\"leader_changes\":" << cell.first.leader_changes
             << ",\"term\":" << cell.first.term
             << ",\"resubmissions\":" << cell.first.resubmissions
             << ",\"dup_commits_skipped\":" << cell.first.dup_commits_skipped
             << ",\"chain_fingerprint\":" << cell.first.chain_fingerprint
             << ",\"violations\":" << cell.first.violations.size() << "}";
    }
    json << "],\"equivalence\":[";
    for (std::size_t i = 0; i < equiv.size(); ++i) {
        const bool identical = equiv[i].mq.metrics_json == equiv[i].rf.metrics_json;
        json << (i ? "," : "") << "{\"seed\":" << equiv[i].seed
             << ",\"identical\":" << (identical ? "true" : "false") << "}";
    }
    json << "]}\n";
    std::cout << "\n" << json.str();
    if (!json_path.empty()) {
        std::ofstream f(json_path);
        f << json.str();
    }

    if (!all_ok) {
        std::cout << "\nRAFT SAFETY VIOLATION (see tables above)\n";
        return 1;
    }
    std::cout << "\nAll safety gates passed.\n";
    return 0;
}
