// Microbenchmarks M2 — the message-queue substrate: append + fan-out cost
// per record, and end-to-end simulated delivery throughput.
#include <benchmark/benchmark.h>

#include "mq/broker.h"

namespace {

using namespace fl;

void BM_ProduceLocalNoSubscribers(benchmark::State& state) {
    sim::Simulator sim;
    sim::Network net(sim, Rng(1));
    mq::Broker<int> broker(sim, net);
    broker.create_topic("t");
    int i = 0;
    for (auto _ : state) {
        broker.produce_local("t", 100, i++);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProduceLocalNoSubscribers);

void BM_ProduceFanout(benchmark::State& state) {
    // Cost of appending + pushing to N subscribers (simulated network sends).
    const auto subs = state.range(0);
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulator sim;
        sim::Network net(sim, Rng(1));
        mq::Broker<int> broker(sim, net);
        broker.create_topic("t");
        std::vector<std::shared_ptr<mq::Subscription<int>>> holders;
        for (std::int64_t s = 0; s < subs; ++s) {
            holders.push_back(broker.subscribe("t", NodeId{static_cast<std::uint64_t>(s)}));
        }
        state.ResumeTiming();
        for (int i = 0; i < 1000; ++i) {
            broker.produce_local("t", 100, i);
        }
        sim.run();
        benchmark::DoNotOptimize(holders.front()->ready_count());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ProduceFanout)->Arg(1)->Arg(3)->Arg(12);

void BM_SubscriptionReorderBuffer(benchmark::State& state) {
    // In-order delivery through deliberately jittered pushes.
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulator sim;
        sim::LinkParams link;
        link.jitter_stddev = Duration::micros(300);
        sim::Network net(sim, Rng(7), link);
        mq::Broker<int> broker(sim, net);
        broker.create_topic("t");
        auto sub = broker.subscribe("t", NodeId{5});
        state.ResumeTiming();
        for (int i = 0; i < 1000; ++i) {
            broker.produce("t", NodeId{1}, 100, i);
        }
        sim.run();
        int consumed = 0;
        while (sub->has_ready()) {
            benchmark::DoNotOptimize(sub->pop());
            ++consumed;
        }
        benchmark::DoNotOptimize(consumed);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SubscriptionReorderBuffer);

}  // namespace
