// Microbenchmarks M5 — committer-side validation: MVCC checks, endorsement
// verification, standard vs prioritized conflict resolution, and the
// serial-vs-parallel wave validator speedup at 1/2/4/8 worker threads.
#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "peer/validator.h"

namespace {

using namespace fl;

struct Setup {
    crypto::KeyStore keys;
    policy::ChannelConfig channel;
    std::unique_ptr<policy::ConsolidationPolicy> consolidation;
    ledger::WorldState state;

    Setup() {
        channel.priority_levels = 3;
        channel.consolidation_spec = "kofn:2";
        channel.endorsement_policy = policy::EndorsementPolicy::k_of_n_orgs(2, 4);
        consolidation = policy::make_consolidation_policy("kofn:2");
        for (std::uint64_t org = 0; org < 4; ++org) {
            keys.register_identity({"org" + std::to_string(org) + ".peer0",
                                    OrgId{org}});
        }
    }

    ledger::Envelope make_tx(std::uint64_t id, PriorityLevel priority,
                             const std::string& key) {
        ledger::Envelope env;
        env.proposal.tx_id = TxId{id};
        env.proposal.chaincode = "bench";
        env.rwset.writes.push_back(ledger::KvWrite{key, "v", false});
        env.consolidated_priority = priority;
        for (std::uint64_t org = 0; org < 4; ++org) {
            ledger::Endorsement e;
            e.endorser_identity = "org" + std::to_string(org) + ".peer0";
            e.org = OrgId{org};
            e.priority = priority;
            const Bytes payload = ledger::Envelope::endorsement_payload(
                env.proposal, env.rwset, priority);
            e.response_hash =
                crypto::sha256(BytesView(payload.data(), payload.size()));
            e.signature = keys.sign(e.endorser_identity,
                                    BytesView(payload.data(), payload.size()));
            env.endorsements.push_back(e);
        }
        return env;
    }

    ledger::Block block_of(std::size_t n, bool contended, std::uint64_t base) {
        std::vector<ledger::Envelope> txs;
        for (std::size_t i = 0; i < n; ++i) {
            const std::string key =
                contended ? "hot" + std::to_string(i % 8)
                          : "k" + std::to_string(base + i);
            txs.push_back(make_tx(base + i, static_cast<PriorityLevel>(i % 3), key));
        }
        return ledger::make_block(0, nullptr, std::move(txs));
    }
};

void BM_ValidateBlock(benchmark::State& state) {
    Setup setup;
    const bool prioritized = state.range(1) != 0;
    const bool contended = state.range(2) != 0;
    const auto n = static_cast<std::size_t>(state.range(0));
    const ledger::Block block = setup.block_of(n, contended, 1);
    peer::ValidatorConfig cfg;
    cfg.prioritized = prioritized;
    cfg.verify_consolidation = prioritized;
    for (auto _ : state) {
        std::unordered_set<std::uint64_t> seen;
        benchmark::DoNotOptimize(
            peer::validate_block(block, setup.state, setup.channel,
                                 setup.consolidation.get(), setup.keys, seen, cfg));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
    state.SetLabel(std::string(prioritized ? "prioritized" : "standard") +
                   (contended ? "/contended" : "/disjoint"));
}
BENCHMARK(BM_ValidateBlock)
    ->Args({100, 0, 0})
    ->Args({100, 1, 0})
    ->Args({100, 1, 1})
    ->Args({500, 0, 0})
    ->Args({500, 1, 0})
    ->Args({500, 1, 1});

// Wall-clock speedup of the wave validator over the serial oracle on one
// block.  threads == 0 runs the serial reference; otherwise a pool of that
// size drives the parallel path.  Wave-schedule stats — and the outcome —
// are identical at every pool size; only the wall-clock changes (and only
// meaningfully on a multi-core host; see EXPERIMENTS.md).
void BM_ValidateBlockParallel(benchmark::State& state) {
    Setup setup;
    const auto n = static_cast<std::size_t>(state.range(0));
    const bool contended = state.range(2) != 0;
    const auto threads = static_cast<unsigned>(state.range(1));
    const ledger::Block block = setup.block_of(n, contended, 1);
    std::unique_ptr<ThreadPool> pool;
    peer::ValidatorConfig cfg;
    cfg.prioritized = true;
    cfg.verify_consolidation = true;
    if (threads > 0) {
        pool = std::make_unique<ThreadPool>(threads);
        cfg.mode = peer::ValidationMode::kParallel;
        cfg.pool = pool.get();
    }
    for (auto _ : state) {
        std::unordered_set<std::uint64_t> seen;
        benchmark::DoNotOptimize(
            peer::validate_block(block, setup.state, setup.channel,
                                 setup.consolidation.get(), setup.keys, seen, cfg));
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
    state.SetLabel(std::string(threads == 0 ? "serial"
                                            : std::to_string(threads) + "t") +
                   (contended ? "/contended" : "/disjoint"));
}
BENCHMARK(BM_ValidateBlockParallel)
    ->Args({500, 0, 0})
    ->Args({500, 1, 0})
    ->Args({500, 2, 0})
    ->Args({500, 4, 0})
    ->Args({500, 8, 0})
    ->Args({500, 0, 1})
    ->Args({500, 4, 1})
    ->UseRealTime();

void BM_MvccValidateReads(benchmark::State& state) {
    ledger::WorldState ws;
    ledger::ReadWriteSet rwset;
    for (int i = 0; i < state.range(0); ++i) {
        const std::string key = "k" + std::to_string(i);
        ws.apply(ledger::KvWrite{key, "v", false}, ledger::Version{1, 0});
        rwset.reads.push_back(ledger::KvRead{key, ledger::Version{1, 0}});
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(ws.validate_reads(rwset));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MvccValidateReads)->Arg(2)->Arg(16)->Arg(128);

}  // namespace
