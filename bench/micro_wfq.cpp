// Microbenchmarks M6 — scheduler disciplines: enqueue/dequeue cost of SFQ,
// DRR/WRR and FIFO at various flow counts.
#include <benchmark/benchmark.h>

#include "wfq/wfq.h"

namespace {

using namespace fl;

template <typename Scheduler>
void pump(Scheduler& s, benchmark::State& state, std::size_t flows) {
    std::size_t i = 0;
    for (auto _ : state) {
        s.enqueue(i % flows, 1.0, static_cast<int>(i));
        ++i;
        if (i % 4 == 0) {
            for (int k = 0; k < 4; ++k) {
                benchmark::DoNotOptimize(s.dequeue());
            }
        }
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(i));
}

void BM_SfqScheduler(benchmark::State& state) {
    const auto flows = static_cast<std::size_t>(state.range(0));
    wfq::WfqScheduler<int> s(std::vector<double>(flows, 1.0));
    pump(s, state, flows);
}
BENCHMARK(BM_SfqScheduler)->Arg(3)->Arg(16)->Arg(64);

void BM_WrrScheduler(benchmark::State& state) {
    const auto flows = static_cast<std::size_t>(state.range(0));
    wfq::WrrScheduler<int> s(std::vector<double>(flows, 1.0), 4.0);
    pump(s, state, flows);
}
BENCHMARK(BM_WrrScheduler)->Arg(3)->Arg(16)->Arg(64);

void BM_FifoScheduler(benchmark::State& state) {
    wfq::FifoScheduler<int> s;
    pump(s, state, 3);
}
BENCHMARK(BM_FifoScheduler);

}  // namespace
