// Figure 4 — Effect of increasing the number of peers on relative latency.
//
// Paper setup: peer counts {4, 8, 12}, 500 tps, arrivals 1:2:1, default
// policy 2:3:1.  For each size the latencies are normalized to the average
// latency of the *same size* network without priorities, so the figure shows
// whether the priority machinery's overhead grows with network scale (it
// must not).  The paper also notes absolute latency grows with peer count
// (x2.7 at 8 peers, x4.3 at 12, driven by endorsement collection and
// validation work) — we report the measured absolute ratios too.
#include "fig_common.h"

int main() {
    using namespace fl;
    using namespace fl::bench;

    const unsigned runs = harness::runs_from_env(3);
    const std::uint64_t total_txs = harness::total_txs_from_env(15'000);
    const double rate = 500.0;

    harness::print_banner(
        std::cout, "Figure 4: number of peers vs relative latency",
        "arrivals 1:2:1 @ 500 tps, policy 2:3:1, per-size no-priority baseline = 1");

    harness::Table table({"peers", "high (rel)", "medium (rel)", "low (rel)",
                          "avg (rel)", "abs baseline (s)", "abs vs 4 peers"});
    double four_peer_base = 0.0;
    for (const std::uint32_t peers : {4u, 8u, 12u}) {
        auto with_cfg = paper_config(true);
        auto without_cfg = paper_config(false);
        with_cfg.orgs = peers;
        without_cfg.orgs = peers;

        const auto baseline =
            run_paper_experiment(without_cfg, rate, total_txs, runs, 9100);
        const auto with = run_paper_experiment(with_cfg, rate, total_txs, runs, 9100);
        print_consistency(with);

        const double base = baseline.overall_latency.mean();
        if (peers == 4) four_peer_base = base;
        table.add_row({std::to_string(peers),
                       harness::fmt(with.priority_latency(0) / base, 3),
                       harness::fmt(with.priority_latency(1) / base, 3),
                       harness::fmt(with.priority_latency(2) / base, 3),
                       harness::fmt(with.overall_latency.mean() / base, 3),
                       harness::fmt(base, 3),
                       harness::fmt(base / four_peer_base, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\n(paper Figure 4: the with-priority overhead stays small and "
                 "flat as peers\n increase; absolute latency grows with peer count "
                 "— paper reports ~2.7x @8\n and ~4.3x @12 on their testbed.)\n";
    return 0;
}
