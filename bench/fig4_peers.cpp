// Figure 4 — Effect of increasing the number of peers on relative latency.
//
// Paper setup: peer counts {4, 8, 12}, 500 tps, arrivals 1:2:1, default
// policy 2:3:1.  For each size the latencies are normalized to the average
// latency of the *same size* network without priorities, so the figure shows
// whether the priority machinery's overhead grows with network scale (it
// must not).  The paper also notes absolute latency grows with peer count
// (x2.7 at 8 peers, x4.3 at 12, driven by endorsement collection and
// validation work) — we report the measured absolute ratios too.
//
// Sweep layout: two points per network size (baseline, with-priority),
// paired through a shared seed_group so both see identical arrivals.
#include "fig_common.h"

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli = harness::parse_sweep_cli(argc, argv, 9100, "fig4_peers");
    const unsigned runs = cli.runs_or(3);
    const std::uint64_t total_txs = cli.txs_or(15'000);
    const double rate = 500.0;
    const std::vector<std::uint32_t> peer_counts = {4, 8, 12};

    harness::print_banner(
        std::cout, "Figure 4: number of peers vs relative latency",
        "arrivals 1:2:1 @ 500 tps, policy 2:3:1, per-size no-priority baseline = 1");

    harness::SweepSpec sweep;
    sweep.name = "fig4_peers";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    for (std::size_t s = 0; s < peer_counts.size(); ++s) {
        const std::uint32_t peers = peer_counts[s];
        for (const bool priority : {false, true}) {
            auto cfg = paper_config(priority);
            cfg.orgs = peers;
            sweep.points.push_back(paper_point(
                "peers=" + std::to_string(peers) +
                    (priority ? "/priority" : "/baseline"),
                {{"peers", static_cast<double>(peers)},
                 {"priority_enabled", priority ? 1.0 : 0.0}},
                std::move(cfg), rate, total_txs, runs, /*seed_group=*/s));
        }
    }

    const auto results = run_timed_sweep(sweep, cli);

    harness::Table table({"peers", "high (rel)", "medium (rel)", "low (rel)",
                          "avg (rel)", "abs baseline (s)", "abs vs 4 peers"});
    double four_peer_base = 0.0;
    for (std::size_t s = 0; s < peer_counts.size(); ++s) {
        const auto& baseline = results[2 * s].result;
        const auto& with = results[2 * s + 1].result;
        print_consistency(with);

        const double base = baseline.overall_latency.mean();
        if (peer_counts[s] == 4) four_peer_base = base;
        table.add_row({std::to_string(peer_counts[s]),
                       harness::fmt(with.priority_latency(0) / base, 3),
                       harness::fmt(with.priority_latency(1) / base, 3),
                       harness::fmt(with.priority_latency(2) / base, 3),
                       harness::fmt(with.overall_latency.mean() / base, 3),
                       harness::fmt(base, 3),
                       harness::fmt(base / four_peer_base, 2) + "x"});
    }
    table.print(std::cout);
    std::cout << "\n(paper Figure 4: the with-priority overhead stays small and "
                 "flat as peers\n increase; absolute latency grows with peer count "
                 "— paper reports ~2.7x @8\n and ~4.3x @12 on their testbed.)\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    return 0;
}
