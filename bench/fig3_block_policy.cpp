// Figure 3 — Effect of Block Formation Policy on relative transaction latency.
//
// Paper setup: arrival ratio 1:2:1 at 500 tps, block size 500, timeout 1 s,
// policies {1:2:1, 1:1:1, 2:3:1, 3:5:1}.  Every latency is normalized to the
// average latency of the same system *without* priorities (the y=1 baseline
// line in the figure).
//
// Expected shape (paper §5.2):
//   * policy == arrival ratio (1:2:1): all classes ~= 1 (small overhead);
//   * 2:3:1 / 3:5:1: high (and medium) below 1, low above 1;
//   * the farther the policy skews from the arrival ratio, the higher the
//     overall system average.
//
// Sweep layout: point 0 is the shared no-priority baseline, points 1..4 the
// policies.  All points share seed_group 0 so every policy faces the exact
// arrival process the baseline saw.
#include "fig_common.h"

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli =
        harness::parse_sweep_cli(argc, argv, 9000, "fig3_block_policy");
    const unsigned runs = cli.runs_or(3);
    const std::uint64_t total_txs = cli.txs_or(15'000);
    const double rate = 500.0;
    const std::vector<std::string> policies = {"1:2:1", "1:1:1", "2:3:1",
                                               "3:5:1"};

    harness::print_banner(
        std::cout, "Figure 3: block formation policy vs relative latency",
        "arrivals 1:2:1 @ " + harness::fmt(rate, 0) + " tps, BS=500, timeout=1s, " +
            std::to_string(runs) + " runs x " + std::to_string(total_txs) + " txs");

    harness::SweepSpec sweep;
    sweep.name = "fig3_block_policy";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    sweep.points.push_back(paper_point(
        "baseline/no-priority", {{"priority_enabled", 0.0}, {"send_rate", rate}},
        paper_config(false), rate, total_txs, runs, /*seed_group=*/0));
    for (const std::string& policy : policies) {
        sweep.points.push_back(paper_point(
            "policy=" + policy, {{"priority_enabled", 1.0}, {"send_rate", rate}},
            paper_config(true, policy), rate, total_txs, runs, /*seed_group=*/0));
    }

    const auto results = run_timed_sweep(sweep, cli);

    // Shared baseline: the same system without priorities.
    const double base = results[0].result.overall_latency.mean();
    std::cout << "baseline (no priority) avg latency: " << harness::fmt(base, 3)
              << " s  [all rows below normalized to this = 1.0]\n\n";

    harness::Table table({"block policy", "high (rel)", "medium (rel)", "low (rel)",
                          "system avg (rel)", "throughput (tps)"});
    for (std::size_t i = 1; i < results.size(); ++i) {
        const auto& r = results[i].result;
        print_consistency(r);
        table.add_row({policies[i - 1], harness::fmt(r.priority_latency(0) / base, 3),
                       harness::fmt(r.priority_latency(1) / base, 3),
                       harness::fmt(r.priority_latency(2) / base, 3),
                       harness::fmt(r.overall_latency.mean() / base, 3),
                       harness::fmt(r.throughput_tps.mean(), 1)});
    }
    table.print(std::cout);
    std::cout << "\n(paper Figure 3: with policy 1:2:1 all classes sit just above "
                 "the baseline;\n 2:3:1 and 3:5:1 push high/medium below 1 at the "
                 "cost of low; skewing away\n from the arrival ratio raises the "
                 "overall average.)\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    return 0;
}
