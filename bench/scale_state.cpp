// Scale harness — million-account Zipfian traffic against the sharded
// world state (DESIGN.md §13, EXPERIMENTS.md A7).
//
// Seeds an `--accounts`-wide account space on every peer, then drives
// Zipf(--zipf/100)-skewed asset transfers (plus a mint slice) at an
// open-loop rate past the paper's 500 tps knee, once per world-state shard
// count in the sweep grid.  Every point shares seed_group 0, so all shard
// counts see byte-identical arrival processes and must commit byte-identical
// ledgers: the bench exits non-zero if the world-state or hash-chain
// fingerprints differ across shard counts — sharding is an implementation
// detail, never an observable (the determinism contract in
// ledger/world_state.h).
//
// Reported per point:
//   * commit throughput / latency (standard sweep metrics),
//   * deterministic store statistics — key count, approximate resident
//     bytes, per-shard key balance, per-shard lock-acquisition counts —
//     which enter the JSON (pure functions of the access sequence),
//   * host-dependent try-lock contention and process RSS, printed to stdout
//     ONLY (never serialized: the JSON must be byte-identical at any
//     --threads value; DESIGN.md §13 explains the split).
//
// Validation runs in ValidationMode::kParallel borrowing the sweep pool, so
// at --threads > 1 the MVCC prechecks genuinely read the sharded store from
// several host threads at once.
#include <array>
#include <atomic>
#include <fstream>
#include <memory>
#include <sstream>

#include "fig_common.h"

namespace {

using namespace fl;

/// Folds a 64-bit fingerprint into two exactly-representable doubles (see
/// ablation_validation.cpp).
void fold_hash(std::map<std::string, double>& extra, const std::string& name,
               std::uint64_t h) {
    extra[name + "_lo"] += static_cast<double>(h & 0xffffffffULL);
    extra[name + "_hi"] += static_cast<double>(h >> 32);
}

/// Zero-padded per-shard extra name ("shard03_keys"): fixed width keeps the
/// JSON keys sorted in shard order.
std::string shard_key(std::size_t shard, const char* suffix) {
    std::string n = std::to_string(shard);
    if (n.size() < 2) n.insert(n.begin(), '0');
    return "shard" + n + "_" + suffix;
}

/// Host-scheduling-dependent counters for one grid point, accumulated on
/// the side so they can be printed without ever entering the JSON.
struct HostCounters {
    std::atomic<std::uint64_t> read_contended{0};
    std::atomic<std::uint64_t> write_contended{0};
};

/// Current process resident set in MiB (/proc/self/status VmRSS), or -1.
long host_rss_mib() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmRSS:", 0) == 0) {
            std::istringstream fields(line.substr(6));
            long kib = 0;
            fields >> kib;
            return kib / 1024;
        }
    }
    return -1;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    harness::BenchFlag accounts_flag{
        "--accounts", "world-state account count seeded on every peer",
        1'000'000, /*positive=*/true};
    harness::BenchFlag shards_flag{
        "--shards", "world-state shard count (default: sweep 1, 4 and 16)",
        0, /*positive=*/true, /*max=*/256};
    harness::BenchFlag zipf_flag{
        "--zipf", "Zipf skew theta in hundredths (99 = 0.99; 0 = uniform)",
        99, /*positive=*/false, /*max=*/99};
    harness::BenchFlag layout_flag{
        "--layout", "intra-channel partition layout: 0 single, 1 roles, "
        "2 per-node (default 0; JSON bytes must not depend on it)",
        0, /*positive=*/false, /*max=*/2};
    const auto cli = harness::parse_sweep_cli(
        argc, argv, 13000, "scale_state",
        {&accounts_flag, &shards_flag, &zipf_flag, &layout_flag});

    const unsigned runs = cli.runs_or(1);
    const std::uint64_t total_txs = cli.txs_or(10'000);
    const std::uint64_t accounts = accounts_flag.value;
    const double theta = static_cast<double>(zipf_flag.value) / 100.0;
    const double total_tps = 2'000.0;  // well past the 500 tps knee
    const double mint_fraction = 0.1;

    std::vector<std::size_t> shard_grid;
    if (shards_flag.seen) {
        shard_grid.push_back(static_cast<std::size_t>(shards_flag.value));
    } else {
        shard_grid = {1, 4, 16};
    }

    harness::print_banner(
        std::cout, "Scale: sharded world state under Zipfian load",
        "one point per shard count, identical arrivals; ledgers must match "
        "byte for byte");
    std::cout << "accounts=" << accounts << " zipf_theta=" << theta
              << " txs=" << total_txs << " rate=" << total_tps << " tps\n\n";

    harness::SweepSpec sweep;
    sweep.name = "scale_state";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;

    // One host-counter slot per point, owned here so the probes (which run
    // on sweep workers) outlive nothing they capture.
    std::vector<std::shared_ptr<HostCounters>> host(shard_grid.size());

    for (std::size_t gi = 0; gi < shard_grid.size(); ++gi) {
        const std::size_t shards = shard_grid[gi];
        host[gi] = std::make_shared<HostCounters>();

        // Small network — the store, not the protocol, is under test.
        core::NetworkConfig cfg;
        cfg.orgs = 2;
        cfg.peers_per_org = 1;
        cfg.osns = 1;
        cfg.clients = 2;
        cfg.channel.priority_enabled = true;
        cfg.channel.priority_levels = 3;
        cfg.channel.consolidation_spec = "kofn:2";
        cfg.channel.block_size = 500;
        cfg.channel.block_timeout = Duration::millis(250);
        cfg.peer_params.validation_mode = peer::ValidationMode::kParallel;
        cfg.peer_params.state_shards = shards;
        // Partitioned engines are byte-identical to the serial one
        // (DESIGN.md §17), so the flag must not change the sweep JSON — CI
        // cross-checks --layout 1 against --layout 0 with cmp.
        cfg.partition.scheme =
            layout_flag.value == 1   ? core::PartitionScheme::kRoles
            : layout_flag.value == 2 ? core::PartitionScheme::kPerNode
                                     : core::PartitionScheme::kSingle;

        harness::ExperimentPoint point;
        point.label = "shards=" + std::to_string(shards);
        point.params = {
            {"shards", static_cast<double>(shards)},
            {"accounts", static_cast<double>(accounts)},
            {"zipf_hundredths", static_cast<double>(zipf_flag.value)},
        };
        point.spec.config = std::move(cfg);
        point.spec.runs = runs;
        point.seed_group = 0;  // every shard count: same arrivals, same txs
        const std::size_t clients = point.spec.config.clients;
        point.spec.make_workload = [clients, total_tps, total_txs, accounts,
                                    theta, mint_fraction] {
            harness::Workload w;
            for (std::size_t c = 0; c < clients; ++c) {
                harness::LoadSpec load;
                load.client_index = c;
                load.tps = total_tps / static_cast<double>(clients);
                load.generate =
                    harness::zipfian_transfers(accounts, theta, mint_fraction);
                w.loads.push_back(std::move(load));
            }
            w.distribute_total(total_txs);
            return w;
        };
        point.spec.instrument = [accounts](core::FabricNetwork& net, unsigned) {
            // Pre-drain: the full account space is committed (version {0,0})
            // on every peer before the first proposal executes.
            harness::seed_scale_accounts(net, accounts);
        };
        point.spec.run_probe = [counters = host[gi]](
                                   core::FabricNetwork& net,
                                   std::map<std::string, double>& extra) {
            const peer::Peer& p = *net.peers().front();
            const ledger::WorldState& state = p.state();
            fold_hash(extra, "state_fp", state.fingerprint());
            fold_hash(extra, "chain_fp", p.chain().chain_fingerprint());
            extra["state_keys"] += static_cast<double>(state.key_count());
            extra["state_bytes_approx"] +=
                static_cast<double>(state.approx_memory_bytes());
            extra["shard_max_keys"] +=
                static_cast<double>(state.max_shard_keys());
            const ledger::WorldState::ShardStats totals = state.total_stats();
            extra["read_locks"] += static_cast<double>(totals.read_locks);
            extra["write_locks"] += static_cast<double>(totals.write_locks);
            extra["valid"] += static_cast<double>(p.txs_valid());
            extra["invalid"] += static_cast<double>(p.txs_invalid());
            extra["wave_blocks"] +=
                static_cast<double>(p.blocks_wave_validated());
            for (std::size_t s = 0; s < state.shard_count(); ++s) {
                const auto stats = state.shard_stats(s);
                extra[shard_key(s, "keys")] +=
                    static_cast<double>(stats.keys);
                extra[shard_key(s, "read_locks")] +=
                    static_cast<double>(stats.read_locks);
            }
            // Host-dependent: side channel only, never `extra` (the JSON
            // must be byte-identical across --threads).
            counters->read_contended.fetch_add(totals.read_contended,
                                               std::memory_order_relaxed);
            counters->write_contended.fetch_add(totals.write_contended,
                                                std::memory_order_relaxed);
        };
        sweep.points.push_back(std::move(point));
    }

    const auto results = run_timed_sweep(sweep, cli);

    harness::Table table({"point", "committed", "tps", "keys", "approx MiB",
                          "max shard keys", "read locks", "contended*",
                          "equal"});
    bool all_ok = true;
    const char* const kEquivalenceKeys[] = {"state_fp_lo", "state_fp_hi",
                                            "chain_fp_lo", "chain_fp_hi",
                                            "valid", "invalid"};
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& r = results[i].result;
        bool equal = r.all_consistent;
        for (const char* key : kEquivalenceKeys) {
            equal = equal &&
                    r.extra_total(key) == results[0].result.extra_total(key);
        }
        // The point must actually have exercised the wave validator — the
        // concurrent-reader claim is empty otherwise.
        equal = equal && r.extra_total("wave_blocks") > 0.0;
        all_ok = all_ok && equal;
        const double runs_d = static_cast<double>(runs);
        table.add_row(
            {results[i].label, std::to_string(r.total_committed),
             harness::fmt(r.throughput_tps.mean(), 1),
             harness::fmt(r.extra_total("state_keys") / runs_d, 0),
             harness::fmt(r.extra_total("state_bytes_approx") / runs_d /
                              (1024.0 * 1024.0),
                          1),
             harness::fmt(r.extra_total("shard_max_keys") / runs_d, 0),
             harness::fmt(r.extra_total("read_locks") / runs_d, 0),
             std::to_string(host[i]->read_contended.load() +
                            host[i]->write_contended.load()),
             equal ? "OK" : "MISMATCH"});
    }
    table.print(std::cout);
    std::cout << "\n*contended = try-lock misses, host-scheduling dependent "
                 "(stdout only, never JSON).\nAll points share seed_group 0: "
                 "equal arrivals, so world-state and chain fingerprints\nmust "
                 "match across shard counts.  Process RSS now: "
              << host_rss_mib() << " MiB (host-dependent).\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    if (!all_ok) {
        std::cout << "SHARDING EQUIVALENCE VIOLATION (see table above)\n";
        return 1;
    }
    return 0;
}
