// Fairness-audit gate: replays the Figure 6 flooding scenario plus a
// starvation adversary with the obs/audit accountant attached, and checks
// that the online detectors fire exactly when they should.
//
// Four points, two seed-paired scenarios:
//   flood/fair        C1 floods at 800 tps, policy 1:1:1, priority on —
//                     the fair system must protect C2/C3 (per-resource Jain
//                     over the non-flooding clients >= 0.95), with zero
//                     priority inversions, alarms or starvation incidents.
//   flood/fifo        same load, priority off — the unfairness alarm must
//                     trip (Jain below threshold for K consecutive windows).
//   starve/besteffort C3 trickles at 50 tps into a weight-0 best-effort
//                     level while C1/C2 saturate the orderer — the
//                     starvation watchdog must report C3.
//   starve/protected  same load under 1:1:1 — no starvation.
//
// Exit status: 0 iff every gate holds in every run; 1 otherwise (the CI
// fairness-audit job also cmp's the JSON across --threads 1 vs 4).
#include "fig_common.h"

#include "obs/audit/fairness.h"

namespace {

// Fig-6 network: policy per scenario, one priority class per client.
fl::core::NetworkConfig audit_config_for(bool priority_enabled,
                                         const std::string& policy) {
    auto cfg = fl::bench::paper_config(priority_enabled, policy);
    cfg.calculator_factory = [] {
        return std::make_unique<fl::peer::ClientClassCalculator>(
            std::unordered_map<fl::ClientId, fl::PriorityLevel>{
                {fl::ClientId{0}, 0}, {fl::ClientId{1}, 1}, {fl::ClientId{2}, 2}},
            0);
    };
    return cfg;
}

fl::harness::ExperimentPoint audit_point(std::string label, bool priority_enabled,
                                         const std::string& policy,
                                         std::vector<double> tps, unsigned runs,
                                         std::uint64_t total_txs,
                                         std::uint64_t seed_group) {
    fl::harness::ExperimentPoint point;
    point.label = std::move(label);
    point.params = {{"priority_enabled", priority_enabled ? 1.0 : 0.0},
                    {"c1_tps", tps[0]},
                    {"c2_tps", tps[1]},
                    {"c3_tps", tps[2]}};
    point.spec.config = audit_config_for(priority_enabled, policy);
    point.spec.make_workload = [tps, total_txs] {
        fl::harness::Workload w;
        for (std::size_t c = 0; c < tps.size(); ++c) {
            fl::harness::LoadSpec load;
            load.client_index = c;
            load.tps = tps[c];
            load.generate = fl::harness::single_chaincode("record_keeper");
            w.loads.push_back(std::move(load));
        }
        w.distribute_total(total_txs);
        return w;
    };
    point.spec.runs = runs;
    point.spec.keep_run_metrics = true;
    // 2 s windows: block formation quantizes service into ~1 s bursts, so a
    // 1 s window would see sawtooth shares and flap the detectors.
    fl::obs::audit::AuditConfig audit;
    audit.window = fl::Duration::millis(2000);
    point.spec.audit = audit;
    point.seed_group = seed_group;
    return point;
}

struct Gate {
    std::string point;
    std::string check;
    double value = 0.0;
    std::string bound;
    bool pass = false;
};

double client_share(const fl::obs::audit::ResourceReport& r, std::uint64_t client) {
    const auto it = r.by_client.find(client);
    return it == r.by_client.end() ? 0.0 : it->second;
}

/// Jain's index over the non-flooding clients' cumulative shares of one
/// resource — the paper's flooding-protection claim, per resource meter.
double victim_jain(const fl::obs::audit::ResourceReport& r) {
    return fl::obs::audit::jain_index({client_share(r, 1), client_share(r, 2)});
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli = harness::parse_sweep_cli(argc, argv, 4200, "audit_fairness");
    const unsigned runs = cli.runs_or(1);
    const std::uint64_t total = cli.txs_or(9'000);

    harness::print_banner(
        std::cout, "Fairness audit: flooding + starvation adversaries, gated",
        "detectors must stay quiet under fairness and fire without it");

    harness::SweepSpec sweep;
    sweep.name = "audit_fairness";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    sweep.points.push_back(audit_point("flood/fair", true, "1:1:1",
                                       {800.0, 100.0, 100.0}, runs, total,
                                       /*seed_group=*/0));
    sweep.points.push_back(audit_point("flood/fifo", false, "1:1:1",
                                       {800.0, 100.0, 100.0}, runs, total,
                                       /*seed_group=*/0));
    sweep.points.push_back(audit_point("starve/besteffort", true, "1:1:0",
                                       {300.0, 300.0, 50.0}, runs, total,
                                       /*seed_group=*/1));
    sweep.points.push_back(audit_point("starve/protected", true, "1:1:1",
                                       {300.0, 300.0, 50.0}, runs, total,
                                       /*seed_group=*/1));

    const auto results = run_timed_sweep(sweep, cli);

    std::vector<Gate> gates;
    const auto add = [&gates](const std::string& point, const std::string& check,
                              double value, const std::string& bound, bool pass) {
        gates.push_back({point, check, value, bound, pass});
    };
    for (const auto& point : results) {
        print_consistency(point.result);
        for (const auto& audit : point.result.audit_reports) {
            const auto& label = point.label;
            const double inversions =
                static_cast<double>(audit.priority_inversions);
            add(label, "priority_inversions", inversions, "== 0",
                audit.priority_inversions == 0);
            if (label == "flood/fair") {
                for (std::size_t r = 0; r < audit.resources.size(); ++r) {
                    const double j = victim_jain(audit.resources[r]);
                    const auto kind = static_cast<obs::audit::ResourceKind>(r);
                    add(label,
                        std::string("victim_jain(") + obs::audit::to_string(kind) +
                            ")",
                        j, ">= 0.95", j >= 0.95);
                }
                add(label, "alarm_trips",
                    static_cast<double>(audit.alarm_trips), "== 0",
                    audit.alarm_trips == 0);
                add(label, "starvation_incidents",
                    static_cast<double>(audit.starvation_incidents), "== 0",
                    audit.starvation_incidents == 0);
            } else if (label == "flood/fifo") {
                add(label, "alarm_trips",
                    static_cast<double>(audit.alarm_trips), ">= 1",
                    audit.alarm_trips >= 1);
            } else if (label == "starve/besteffort") {
                add(label, "starvation_incidents",
                    static_cast<double>(audit.starvation_incidents), ">= 1",
                    audit.starvation_incidents >= 1);
                add(label, "starved_client_2",
                    audit.starved_clients.count(2) != 0 ? 1.0 : 0.0, "== 1",
                    audit.starved_clients.count(2) != 0);
            } else if (label == "starve/protected") {
                add(label, "starvation_incidents",
                    static_cast<double>(audit.starvation_incidents), "== 0",
                    audit.starvation_incidents == 0);
            }
        }
    }

    harness::Table table({"point", "gate", "value", "bound", "status"});
    bool all_pass = true;
    for (const auto& g : gates) {
        all_pass = all_pass && g.pass;
        table.add_row({g.point, g.check, harness::fmt(g.value, 3), g.bound,
                       g.pass ? "PASS" : "FAIL"});
    }
    table.print(std::cout);
    std::cout << "\n" << (all_pass ? "all fairness-audit gates hold\n"
                                   : "FAIL: fairness-audit gate violated\n");

    harness::emit_sweep_json(cli, sweep, results, std::cout);
    return all_pass ? 0 : 1;
}
