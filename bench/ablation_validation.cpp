// Ablation A6 — serial vs parallel block validation (DESIGN.md §12).
//
// Runs the paper pipeline over a seed grid, each seed twice: once with the
// serial reference validator and once with the conflict-graph wave validator
// (ValidationMode::kParallel), paired via seed_group so both see identical
// arrival processes.  Per run it fingerprints, at peer 0:
//   * the committed world state (key/value/version map),
//   * the block hash chain,
//   * the full valid/invalid verdict sequence in block order,
// plus the valid/invalid totals and the priority/FIFO conflict-resolution
// counters.  The process exits non-zero if any serial/parallel pair differs
// in any of these, or if the parallel points never actually exercised the
// wave path — so this bench doubles as the validation-equivalence gate in
// CI.  The grid covers the paper's 1:2:1 priority mix (varied priorities,
// moderate conflicts) and a hot-account transfer workload (heavy intra-block
// conflicts with priority ties, resolved FIFO).
//
// As everywhere: simulated costs don't depend on ValidationMode or pool
// size, so the JSON is byte-identical at any --threads value per mode.
#include "fig_common.h"

namespace {

using namespace fl;

constexpr std::uint32_t kHotAccounts = 6;

/// Folds a 64-bit fingerprint into two exactly-representable doubles (the
/// extra map aggregates doubles; 32-bit halves summed over a handful of runs
/// stay far below 2^53, so equal sums <=> equal per-run fingerprints in
/// practice).
void fold_hash(std::map<std::string, double>& extra, const std::string& name,
               std::uint64_t h) {
    extra[name + "_lo"] += static_cast<double>(h & 0xffffffffULL);
    extra[name + "_hi"] += static_cast<double>(h >> 32);
}

void equivalence_probe(core::FabricNetwork& net,
                       std::map<std::string, double>& extra) {
    const peer::Peer& p = *net.peers().front();
    fold_hash(extra, "state_fp", p.state().fingerprint());
    fold_hash(extra, "chain_fp", p.chain().chain_fingerprint());
    // FNV-1a over every verdict in block order — the bitmask the paper's
    // validator must reproduce exactly.
    std::uint64_t verdicts = 1469598103934665603ULL;
    const ledger::BlockStore& chain = p.chain();
    for (std::size_t b = 0; b < chain.height(); ++b) {
        for (const TxValidationCode code : chain.at(b).validation_codes) {
            verdicts = (verdicts ^ static_cast<std::uint64_t>(code)) *
                       1099511628211ULL;
        }
    }
    fold_hash(extra, "verdict_fp", verdicts);
    extra["valid"] += static_cast<double>(p.txs_valid());
    extra["invalid"] += static_cast<double>(p.txs_invalid());
    extra["priority_wins"] += static_cast<double>(p.mvcc_priority_wins());
    extra["fifo_wins"] += static_cast<double>(p.mvcc_fifo_wins());
    extra["wave_blocks"] += static_cast<double>(p.blocks_wave_validated());
    extra["waves"] += static_cast<double>(p.validation_waves());
    extra["conflict_edges"] += static_cast<double>(p.conflict_edges());
}

/// Keys that must match exactly between a serial point and its paired
/// parallel point.
const char* const kEquivalenceKeys[] = {
    "state_fp_lo",  "state_fp_hi",  "chain_fp_lo",    "chain_fp_hi",
    "verdict_fp_lo", "verdict_fp_hi", "valid",          "invalid",
    "priority_wins", "fifo_wins",
};

}  // namespace

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli =
        harness::parse_sweep_cli(argc, argv, 7000, "ablation_validation");
    const unsigned runs = cli.runs_or(2);
    const std::uint64_t total_txs = cli.txs_or(4'000);
    const double total_tps = 400.0;

    harness::print_banner(
        std::cout, "Ablation A6: serial vs parallel prioritized validation",
        "paired seeds; identical arrivals per pair; wave path must match the "
        "serial oracle bit for bit");

    struct Scenario {
        const char* label;
        bool contended;
        std::uint64_t seed_group;
    };
    const Scenario scenarios[] = {
        // Point 0 first so a default --trace instruments a paper-workload
        // point (arm_trace_capture chains with the contended points'
        // seeding hook, but the mix points are the figure of record).
        {"mix", false, 0},
        {"mix", false, 1},
        {"contended", true, 2},
        {"contended", true, 3},
    };

    harness::SweepSpec sweep;
    sweep.name = "ablation_validation";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    for (const Scenario& sc : scenarios) {
        for (const bool parallel : {false, true}) {
            auto cfg = paper_config(true);
            if (sc.contended) cfg.channel.block_size = 100;
            cfg.peer_params.validation_mode = parallel
                                                  ? peer::ValidationMode::kParallel
                                                  : peer::ValidationMode::kSerial;
            harness::ExperimentPoint point = paper_point(
                std::string(sc.label) + "/s" + std::to_string(sc.seed_group) +
                    (parallel ? "/parallel" : "/serial"),
                {{"seed_group", static_cast<double>(sc.seed_group)},
                 {"parallel", parallel ? 1.0 : 0.0}},
                std::move(cfg), total_tps, total_txs, runs, sc.seed_group);
            if (sc.contended) {
                const std::size_t clients = point.spec.config.clients;
                point.spec.make_workload = [clients, total_tps, total_txs] {
                    harness::Workload w;
                    for (std::size_t c = 0; c < clients; ++c) {
                        harness::LoadSpec load;
                        load.client_index = c;
                        load.tps = total_tps / static_cast<double>(clients);
                        load.generate = harness::contended_transfers(kHotAccounts);
                        w.loads.push_back(std::move(load));
                    }
                    w.distribute_total(total_txs);
                    return w;
                };
                point.spec.instrument = [](core::FabricNetwork& net, unsigned) {
                    // Pre-drain, so the seeded balances are committed before
                    // any proposal executes.
                    harness::seed_hot_accounts(net, kHotAccounts);
                };
            }
            point.spec.run_probe = equivalence_probe;
            sweep.points.push_back(std::move(point));
        }
    }

    const auto results = run_timed_sweep(sweep, cli);

    harness::Table table({"point", "committed", "valid", "invalid", "prio wins",
                          "fifo wins", "waves", "equal"});
    bool all_ok = true;
    for (std::size_t i = 0; i < results.size(); i += 2) {
        const auto& serial = results[i].result;
        const auto& parallel = results[i + 1].result;
        bool equal = true;
        for (const char* key : kEquivalenceKeys) {
            equal = equal && serial.extra_total(key) == parallel.extra_total(key);
        }
        // The parallel member must actually have taken the wave path (and
        // the serial member must not) — otherwise this gate tests nothing.
        equal = equal && serial.extra_total("wave_blocks") == 0.0 &&
                parallel.extra_total("wave_blocks") > 0.0;
        all_ok = all_ok && equal;
        for (const std::size_t j : {i, i + 1}) {
            const auto& r = results[j].result;
            table.add_row({results[j].label,
                           std::to_string(r.total_committed + r.total_invalid),
                           harness::fmt(r.extra_total("valid"), 0),
                           harness::fmt(r.extra_total("invalid"), 0),
                           harness::fmt(r.extra_total("priority_wins"), 0),
                           harness::fmt(r.extra_total("fifo_wins"), 0),
                           harness::fmt(r.extra_total("waves"), 0),
                           equal ? "OK" : "MISMATCH"});
        }
    }
    table.print(std::cout);
    std::cout << "\nEach pair shares its arrival process (seed_group); 'equal' "
                 "covers world-state,\nhash-chain and verdict-sequence "
                 "fingerprints plus valid/invalid and conflict-\nresolution "
                 "counters, and requires the parallel member to have used the "
                 "wave path.\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    if (!all_ok) {
        std::cout << "VALIDATION EQUIVALENCE VIOLATION (see table above)\n";
        return 1;
    }
    return 0;
}
