// Ablation A2 — the TTC coordination protocol (paper §3.3).
//
// Sweeps OSN local-clock skew and reports (a) that all OSNs still cut
// identical block sequences, (b) how many blocks were cut via timeout/TTC
// vs by filling every quota, and (c) how many redundant TTC messages the
// protocol generates (every OSN that reaches its timeout posts one marker
// per queue).  This quantifies the protocol's cost: a handful of tiny
// control records per block, in exchange for cross-OSN determinism that
// naive local timers cannot provide (the paper's OSN1/OSN2 divergence
// example).
#include <iostream>

#include "fig_common.h"

int main() {
    using namespace fl;
    using namespace fl::bench;

    const unsigned runs = harness::runs_from_env(2);
    const std::uint64_t total_txs = harness::total_txs_from_env(6'000);

    harness::print_banner(
        std::cout, "Ablation A2: TTC protocol under OSN clock skew",
        "policy 2:3:1 @ 300 tps (timeout path dominates), 3 OSNs");

    harness::Table table({"max skew (ms)", "identical blocks", "blocks",
                          "timeout-cut %", "TTCs sent / block", "avg latency (s)"});
    for (const std::int64_t skew_ms : {0, 50, 120, 250, 500}) {
        bool all_identical = true;
        std::uint64_t blocks = 0;
        std::uint64_t timeout_cut = 0;
        std::uint64_t ttcs = 0;
        RunAggregator latency;
        for (unsigned run = 0; run < runs; ++run) {
            auto cfg = paper_config(true);
            cfg.max_osn_clock_skew = Duration::millis(skew_ms);
            cfg.seed = 4000 + run;
            core::FabricNetwork net(cfg);
            core::MetricsCollector metrics;
            net.set_tx_sink([&metrics](const client::TxRecord& r) { metrics.record(r); });
            harness::WorkloadDriver driver(net, paper_workload(3, 300.0, total_txs),
                                           Rng(cfg.seed * 3 + 1));
            driver.start();
            net.run();

            all_identical = all_identical && net.osn_blocks_identical() &&
                            net.chains_identical();
            const auto& chain = net.peers().front()->chain();
            blocks += chain.height();
            for (BlockNumber n = 0; n < chain.height(); ++n) {
                if (chain.at(n).cut_by_timeout) ++timeout_cut;
            }
            for (const auto& osn : net.osns()) {
                if (osn->generator() != nullptr) {
                    ttcs += osn->generator()->ttcs_sent();
                }
            }
            latency.add_run(metrics.avg_latency());
        }
        table.add_row({std::to_string(skew_ms),
                       all_identical ? "yes" : "NO (diverged!)",
                       std::to_string(blocks / runs),
                       harness::fmt(100.0 * static_cast<double>(timeout_cut) /
                                        static_cast<double>(blocks), 1),
                       harness::fmt(static_cast<double>(ttcs) /
                                        static_cast<double>(blocks), 2),
                       harness::fmt(latency.mean(), 3)});
    }
    table.print(std::cout);
    std::cout << "\nEven with local timers skewed by half the block timeout, every "
                 "OSN cuts the\nidentical chain: the first TTC marker per queue "
                 "fixes the cut position in the\ntotal order.  Redundant TTCs from "
                 "slower OSNs are consumed and ignored.\n";
    return 0;
}
