// Ablation A2 — the TTC coordination protocol (paper §3.3).
//
// Sweeps OSN local-clock skew and reports (a) that all OSNs still cut
// identical block sequences, (b) how many blocks were cut via timeout/TTC
// vs by filling every quota, and (c) how many redundant TTC messages the
// protocol generates (every OSN that reaches its timeout posts one marker
// per queue).  This quantifies the protocol's cost: a handful of tiny
// control records per block, in exchange for cross-OSN determinism that
// naive local timers cannot provide (the paper's OSN1/OSN2 divergence
// example).
//
// Sweep layout: one point per skew value; the run_probe collects the chain
// shape (timeout-cut blocks, TTCs sent) into the point's extra counters.
#include "fig_common.h"

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli = harness::parse_sweep_cli(argc, argv, 4000, "ablation_ttc");
    const unsigned runs = cli.runs_or(2);
    const std::uint64_t total_txs = cli.txs_or(6'000);
    const std::vector<std::int64_t> skews_ms = {0, 50, 120, 250, 500};

    harness::print_banner(
        std::cout, "Ablation A2: TTC protocol under OSN clock skew",
        "policy 2:3:1 @ 300 tps (timeout path dominates), 3 OSNs");

    harness::SweepSpec sweep;
    sweep.name = "ablation_ttc";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    for (const std::int64_t skew_ms : skews_ms) {
        harness::ExperimentPoint point;
        point.label = "skew=" + std::to_string(skew_ms) + "ms";
        point.params = {{"max_skew_ms", static_cast<double>(skew_ms)}};
        auto cfg = paper_config(true);
        cfg.max_osn_clock_skew = Duration::millis(skew_ms);
        point.spec.config = std::move(cfg);
        point.spec.make_workload = [total_txs] {
            return paper_workload(3, 300.0, total_txs);
        };
        point.spec.runs = runs;
        point.spec.run_probe = [](core::FabricNetwork& net,
                                  std::map<std::string, double>& extra) {
            const auto& chain = net.peers().front()->chain();
            for (BlockNumber n = 0; n < chain.height(); ++n) {
                if (chain.at(n).cut_by_timeout) extra["timeout_cut"] += 1.0;
            }
            for (const auto& osn : net.osns()) {
                if (osn->generator() != nullptr) {
                    extra["ttcs_sent"] +=
                        static_cast<double>(osn->generator()->ttcs_sent());
                }
            }
        };
        sweep.points.push_back(std::move(point));
    }

    const auto results = run_timed_sweep(sweep, cli);

    harness::Table table({"max skew (ms)", "identical blocks", "blocks",
                          "timeout-cut %", "TTCs sent / block", "avg latency (s)"});
    for (std::size_t s = 0; s < skews_ms.size(); ++s) {
        const auto& r = results[s].result;
        const double blocks = r.blocks_per_run.mean();
        table.add_row({std::to_string(skews_ms[s]),
                       r.all_consistent ? "yes" : "NO (diverged!)",
                       harness::fmt(blocks, 0),
                       harness::fmt(100.0 * r.extra_mean("timeout_cut") / blocks, 1),
                       harness::fmt(r.extra_mean("ttcs_sent") / blocks, 2),
                       harness::fmt(r.overall_latency.mean(), 3)});
    }
    table.print(std::cout);
    std::cout << "\nEven with local timers skewed by half the block timeout, every "
                 "OSN cuts the\nidentical chain: the first TTC marker per queue "
                 "fixes the cut position in the\ntotal order.  Redundant TTCs from "
                 "slower OSNs are consumed and ignored.\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    return 0;
}
