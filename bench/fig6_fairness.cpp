// Figure 6 — Resource fairness: relative latency as one client floods.
//
// Paper setup (§5.5): three clients C1, C2, C3, one priority class each,
// equal fair shares (block formation policy 1:1:1 — "an equal weight if
// equality is desired").  All start at 100 tps; C1's rate then rises by
// 100 tps per run up to 500 tps.  Latencies are normalized to the average
// latency of the no-priority system at the initial 100/100/100 load.
//
// Expected shape: without priority every client's latency climbs as C1
// floods (unfair); with the fair-queueing system C2/C3 remain flat at ~1 and
// only C1 pays.
//
// Sweep layout: point 0 is the calm 100/100/100 no-priority normalizer;
// then two points per C1 rate (FIFO, fair) paired through seed_group.
#include "fig_common.h"

namespace {

fl::core::NetworkConfig fairness_config(bool priority_enabled) {
    auto cfg = fl::bench::paper_config(priority_enabled, "1:1:1");
    cfg.calculator_factory = [] {
        return std::make_unique<fl::peer::ClientClassCalculator>(
            std::unordered_map<fl::ClientId, fl::PriorityLevel>{
                {fl::ClientId{0}, 0}, {fl::ClientId{1}, 1}, {fl::ClientId{2}, 2}},
            0);
    };
    return cfg;
}

fl::harness::ExperimentPoint flood_point(bool priority_enabled, double c1_tps,
                                         unsigned runs, std::uint64_t total_txs,
                                         std::uint64_t seed_group) {
    fl::harness::ExperimentPoint point;
    point.label = "c1=" + fl::harness::fmt(c1_tps, 0) +
                  (priority_enabled ? "/fair" : "/fifo");
    point.params = {{"c1_tps", c1_tps},
                    {"priority_enabled", priority_enabled ? 1.0 : 0.0}};
    point.spec.config = fairness_config(priority_enabled);
    point.spec.make_workload = [c1_tps, total_txs] {
        fl::harness::Workload w;
        for (std::size_t c = 0; c < 3; ++c) {
            fl::harness::LoadSpec load;
            load.client_index = c;
            load.tps = c == 0 ? c1_tps : 100.0;
            // All clients run the same record-keeping contract: only *who
            // submits* differs, as in the paper's flooding scenario.
            load.generate = fl::harness::single_chaincode("record_keeper");
            w.loads.push_back(std::move(load));
        }
        w.distribute_total(total_txs);
        return w;
    };
    point.spec.runs = runs;
    point.seed_group = seed_group;
    return point;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace fl;
    using namespace fl::bench;

    const auto cli = harness::parse_sweep_cli(argc, argv, 9300, "fig6_fairness");
    const unsigned runs = cli.runs_or(3);
    // Scale the per-run volume with the offered load (paper: fixed wall
    // duration per run); 15000 txs at the 300 tps starting point ~ 50 s.
    const std::uint64_t base_total = cli.txs_or(15'000);
    const std::vector<double> c1_rates = {100.0, 200.0, 300.0, 400.0, 500.0};

    harness::print_banner(
        std::cout, "Figure 6: one client floods (C1), per-client relative latency",
        "policy 1:1:1, one class per client; baseline = no-priority @ 100 tps each");

    harness::SweepSpec sweep;
    sweep.name = "fig6_fairness";
    sweep.base_seed = cli.base_seed;
    sweep.threads = cli.threads;
    // Normalization: no-priority system at the initial 100/100/100 load.
    sweep.points.push_back(
        flood_point(false, 100.0, runs, base_total / 3, /*seed_group=*/0));
    for (std::size_t s = 0; s < c1_rates.size(); ++s) {
        const std::uint64_t total = static_cast<std::uint64_t>(
            static_cast<double>(base_total) * (c1_rates[s] + 200.0) / 900.0);
        sweep.points.push_back(
            flood_point(false, c1_rates[s], runs, total, /*seed_group=*/s + 1));
        sweep.points.push_back(
            flood_point(true, c1_rates[s], runs, total, /*seed_group=*/s + 1));
    }

    const auto results = run_timed_sweep(sweep, cli);

    const double base = results[0].result.overall_latency.mean();
    std::cout << "baseline (no priority, 100 tps each) avg latency: "
              << harness::fmt(base, 3) << " s\n\n";

    harness::Table table({"C1 rate (tps)", "noprio C1", "noprio C2", "noprio C3",
                          "fair C1", "fair C2", "fair C3"});
    for (std::size_t s = 0; s < c1_rates.size(); ++s) {
        const auto& noprio = results[1 + 2 * s].result;
        const auto& fair = results[2 + 2 * s].result;
        print_consistency(fair);
        table.add_row({harness::fmt(c1_rates[s], 0),
                       harness::fmt(noprio.client_latency(0) / base, 3),
                       harness::fmt(noprio.client_latency(1) / base, 3),
                       harness::fmt(noprio.client_latency(2) / base, 3),
                       harness::fmt(fair.client_latency(0) / base, 3),
                       harness::fmt(fair.client_latency(1) / base, 3),
                       harness::fmt(fair.client_latency(2) / base, 3)});
    }
    table.print(std::cout);
    std::cout << "\n(paper Figure 6: without priority C2/C3 suffer as C1 floods; "
                 "with resource\n fairness C2/C3 stay flat and only C1's latency "
                 "rises — flooding protection.)\n";
    harness::emit_sweep_json(cli, sweep, results, std::cout);
    return 0;
}
