// Node-group partition sweep + serial-vs-partitioned equivalence gate (A11).
//
// Runs the scale_state workload (Zipf-skewed asset transfers over a
// pre-seeded account space, paper-default network) through the
// intra-channel partitioned engine at every layout — single | roles |
// per-node — with and without a worker pool, and byte-compares every
// observable artifact against the serial engine: metrics JSON, trace
// JSONL, chain/state fingerprints, block height.  Any divergence prints
// PARTITION EQUIVALENCE VIOLATION and exits 1 — node-group partitioning
// is an engine optimization, never an observable (DESIGN.md §17).  The
// single-group run is additionally compared byte-for-byte against the
// legacy path (harness::run_once) on the same seed.
//
// Wall-clock timings and the speedup column are host-dependent: they stay
// on stdout plus a separate *_timing.json artifact (so the perf trajectory
// lands in the BENCH_*.json uploads without poisoning the deterministic
// JSON, whose bytes depend on --seed alone).  --min-speedup P turns the
// roles-layout speedup into a gate (P in percent, 150 = 1.5x); CI only
// passes it on runners with enough cores for the number to mean anything.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fig_common.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/metrics.h"
#include "obs/trace.h"

namespace {

using Clock = std::chrono::steady_clock;

std::string hex64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// Everything one run produces.  The string/fingerprint fields are the
/// byte-identity surface; `wall` times net.run() only (construction and
/// account seeding are identical serial work in every variant).
struct RunCapture {
    std::string metrics_json;
    std::string trace_jsonl;
    std::uint64_t chain_fp = 0;
    std::uint64_t state_fp = 0;
    std::uint64_t blocks = 0;
    std::uint64_t committed = 0;
    std::uint64_t events = 0;
    std::uint64_t windows = 0;
    std::size_t groups = 1;
    bool consistent = false;
    double wall = 0.0;  ///< host-dependent; stdout / timing JSON only
};

struct BenchSetup {
    fl::core::NetworkConfig config;  ///< partition scheme overridden per run
    std::uint64_t seed = 0;
    std::uint64_t accounts = 0;
    double theta = 0.0;
    double total_tps = 2'000.0;  ///< well past the 500 tps knee
    std::uint64_t txs = 0;
};

fl::harness::Workload make_workload(const BenchSetup& s) {
    fl::harness::Workload w;
    const std::size_t clients = s.config.clients;
    for (std::size_t c = 0; c < clients; ++c) {
        fl::harness::LoadSpec load;
        load.client_index = c;
        load.tps = s.total_tps / static_cast<double>(clients);
        load.generate = fl::harness::zipfian_transfers(s.accounts, s.theta,
                                                       /*mint_fraction=*/0.1);
        w.loads.push_back(std::move(load));
    }
    w.distribute_total(s.txs);
    return w;
}

/// Builds the network at `scheme`, drives the workload and captures every
/// observable output.  Setup mirrors harness::run_once exactly (tx sink →
/// workload start → account seeding + trace sink → run) so the single-group
/// capture is bit-comparable against the legacy path.
RunCapture drive(const BenchSetup& s, fl::core::PartitionScheme scheme,
                 fl::ThreadPool* pool) {
    fl::core::NetworkConfig cfg = s.config;
    cfg.seed = s.seed;
    cfg.partition.scheme = scheme;
    fl::core::FabricNetwork net(std::move(cfg));

    fl::core::MetricsCollector metrics;
    net.set_tx_sink(
        [&metrics](const fl::client::TxRecord& r) { metrics.record(r); });
    fl::harness::WorkloadDriver driver(net, make_workload(s),
                                       fl::Rng(s.seed ^ 0x574B4C44ull));
    driver.start();
    fl::harness::seed_scale_accounts(net, s.accounts);
    fl::obs::TraceSink trace;
    net.set_trace_sink(&trace);

    RunCapture out;
    const auto started = Clock::now();
    net.run(pool);
    out.wall = std::chrono::duration<double>(Clock::now() - started).count();

    std::ostringstream ms;
    fl::core::write_metrics_json(ms, metrics);
    out.metrics_json = ms.str();
    std::ostringstream ts;
    trace.write_jsonl(ts);
    out.trace_jsonl = ts.str();
    out.chain_fp = net.peers().front()->chain().chain_fingerprint();
    out.state_fp = net.peers().front()->state().fingerprint();
    out.blocks = net.peers().front()->chain().height();
    out.committed = metrics.committed_valid();
    out.events = net.events_executed();
    out.windows = net.partition_windows();
    out.groups = net.partition_groups();
    out.consistent = net.chains_identical() && net.states_identical() &&
                     net.osn_blocks_identical();
    return out;
}

/// Byte/field comparison against the serial baseline; returns human-readable
/// divergence descriptions (empty = equivalent).  Window counts are layout
/// properties, so they are compared at the call site (pool vs no pool of
/// the SAME layout), not here.
std::vector<std::string> diff_vs_baseline(const RunCapture& base,
                                          const RunCapture& run,
                                          const std::string& tag) {
    std::vector<std::string> diffs;
    if (base.metrics_json != run.metrics_json) diffs.push_back(tag + " metrics JSON");
    if (base.trace_jsonl != run.trace_jsonl) diffs.push_back(tag + " trace JSONL");
    if (base.chain_fp != run.chain_fp) diffs.push_back(tag + " chain fingerprint");
    if (base.state_fp != run.state_fp) diffs.push_back(tag + " state fingerprint");
    if (base.blocks != run.blocks) diffs.push_back(tag + " block height");
    if (base.committed != run.committed) diffs.push_back(tag + " committed count");
    if (base.events != run.events) diffs.push_back(tag + " event count");
    if (!run.consistent) diffs.push_back(tag + " inconsistent replicas");
    return diffs;
}

/// The single-group legacy gate: our drive() at PartitionScheme::kSingle
/// must emit the exact bytes of harness::run_once on the same seed.
std::vector<std::string> diff_vs_legacy(const RunCapture& ours,
                                        const BenchSetup& s) {
    fl::harness::ExperimentSpec spec;
    spec.config = s.config;
    spec.make_workload = [&s] { return make_workload(s); };
    fl::obs::TraceSink sink;
    spec.instrument = [&sink, &s](fl::core::FabricNetwork& net, unsigned) {
        fl::harness::seed_scale_accounts(net, s.accounts);
        net.set_trace_sink(&sink);
    };
    std::uint64_t chain_fp = 0;
    std::uint64_t state_fp = 0;
    spec.run_probe = [&](fl::core::FabricNetwork& net,
                         std::map<std::string, double>&) {
        chain_fp = net.peers().front()->chain().chain_fingerprint();
        state_fp = net.peers().front()->state().fingerprint();
    };
    const fl::harness::RunResult legacy = fl::harness::run_once(spec, s.seed);

    std::vector<std::string> diffs;
    std::ostringstream metrics_os;
    fl::core::write_metrics_json(metrics_os, legacy.metrics, nullptr);
    if (ours.metrics_json != metrics_os.str()) diffs.push_back("legacy metrics JSON");
    std::ostringstream trace_os;
    sink.write_jsonl(trace_os);
    if (ours.trace_jsonl != trace_os.str()) diffs.push_back("legacy trace JSONL");
    if (ours.chain_fp != chain_fp) diffs.push_back("legacy chain fingerprint");
    if (ours.state_fp != state_fp) diffs.push_back("legacy state fingerprint");
    return diffs;
}

/// BENCH_x.json → BENCH_x_timing.json (same directory, so it rides the
/// same artifact glob as the deterministic JSON).
std::string timing_path(const std::string& json_path) {
    const std::string suffix = ".json";
    if (json_path.size() > suffix.size() &&
        json_path.compare(json_path.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
        return json_path.substr(0, json_path.size() - suffix.size()) +
               "_timing.json";
    }
    return json_path + "_timing.json";
}

}  // namespace

int main(int argc, char** argv) {
    fl::harness::BenchFlag accounts_flag{
        "--accounts", "--accounts N    pre-seeded account count (default 50000)",
        50'000, /*positive=*/true};
    fl::harness::BenchFlag zipf_flag{
        "--zipf", "--zipf H        Zipf theta in hundredths (99 = 0.99; 0 = uniform)",
        99, /*positive=*/false, /*max=*/99};
    fl::harness::BenchFlag min_speedup_flag{
        "--min-speedup",
        "--min-speedup P require roles-layout speedup >= P percent (150 = "
        "1.5x; default: report only)",
        0, /*positive=*/false, /*max=*/10'000};
    const fl::harness::SweepCli cli = fl::harness::parse_sweep_cli(
        argc, argv, /*default_seed=*/42, "scale_partitions",
        {&accounts_flag, &zipf_flag, &min_speedup_flag});

    BenchSetup setup;
    setup.config = fl::bench::paper_config(/*priority_enabled=*/true);
    setup.seed = cli.base_seed;
    setup.accounts = accounts_flag.value;
    setup.theta = static_cast<double>(zipf_flag.value) / 100.0;
    setup.txs = cli.txs_or(4'000);

    fl::harness::print_banner(
        std::cout, "scale_partitions: intra-channel partitioned engine",
        "serial vs partitioned byte equivalence at every node-group layout");
    std::cout << "accounts=" << setup.accounts << " zipf_theta=" << setup.theta
              << " txs=" << setup.txs << " rate=" << setup.total_tps
              << " tps\n\n";

    fl::ThreadPool pool(cli.threads);
    const unsigned pool_size = static_cast<unsigned>(pool.size());
    const unsigned hw_threads = std::thread::hardware_concurrency();

    struct Layout {
        const char* label;
        fl::core::PartitionScheme scheme;
    };
    const std::vector<Layout> layouts = {
        {"single", fl::core::PartitionScheme::kSingle},
        {"roles", fl::core::PartitionScheme::kRoles},
        {"per-node", fl::core::PartitionScheme::kPerNode},
    };

    fl::harness::Table table({"layout", "groups", "windows", "committed",
                              "blocks", "inline s*", "pooled s*", "speedup*",
                              "equal"});

    std::ostringstream json;
    fl::JsonWriter jw(json);
    jw.begin_object();
    jw.field("bench", "scale_partitions");
    jw.field("base_seed", cli.base_seed);
    jw.field("accounts", setup.accounts);
    jw.field("zipf_hundredths", zipf_flag.value);
    jw.field("txs", setup.txs);
    jw.key("points");
    jw.begin_array();

    std::ostringstream timing_json;
    fl::JsonWriter tw(timing_json);
    tw.begin_object();
    tw.field("bench", "scale_partitions_timing");
    tw.field("hardware_threads", static_cast<std::uint64_t>(hw_threads));
    tw.field("pool_workers", static_cast<std::uint64_t>(pool_size));
    tw.key("points");
    tw.begin_array();

    bool all_ok = true;
    double roles_speedup = 0.0;
    RunCapture baseline;
    const auto started = Clock::now();
    for (const Layout& layout : layouts) {
        std::vector<std::string> diffs;
        RunCapture inline_run;
        RunCapture pooled_run;
        double speedup = 0.0;
        if (layout.scheme == fl::core::PartitionScheme::kSingle) {
            // The serial engine IS the baseline; a pool changes nothing at
            // one group, so this point runs once and gates the legacy path.
            baseline = drive(setup, layout.scheme, nullptr);
            inline_run = baseline;
            pooled_run = baseline;
            diffs = diff_vs_legacy(baseline, setup);
        } else {
            inline_run = drive(setup, layout.scheme, nullptr);
            pooled_run = drive(setup, layout.scheme, &pool);
            const std::string tag(layout.label);
            diffs = diff_vs_baseline(baseline, inline_run, tag + "/inline");
            const auto pooled_diffs =
                diff_vs_baseline(baseline, pooled_run, tag + "/pooled");
            diffs.insert(diffs.end(), pooled_diffs.begin(), pooled_diffs.end());
            if (inline_run.windows != pooled_run.windows) {
                diffs.push_back(tag + " window count (pool-dependent)");
            }
            speedup = pooled_run.wall > 0.0 ? baseline.wall / pooled_run.wall
                                            : 0.0;
            if (layout.scheme == fl::core::PartitionScheme::kRoles) {
                roles_speedup = speedup;
            }
        }
        for (const std::string& d : diffs) {
            std::cout << "DIVERGENCE (" << layout.label << "): " << d << "\n";
        }
        const bool ok = diffs.empty();
        all_ok = all_ok && ok;

        const bool partitioned =
            layout.scheme != fl::core::PartitionScheme::kSingle;
        table.add_row({layout.label, std::to_string(pooled_run.groups),
                       std::to_string(pooled_run.windows),
                       std::to_string(pooled_run.committed),
                       std::to_string(pooled_run.blocks),
                       fl::harness::fmt(inline_run.wall, 2),
                       partitioned ? fl::harness::fmt(pooled_run.wall, 2) : "-",
                       partitioned ? fl::harness::fmt(speedup, 2) : "-",
                       ok ? "OK" : "MISMATCH"});

        jw.begin_object();
        jw.field("layout", layout.label);
        jw.field("groups", static_cast<std::uint64_t>(pooled_run.groups));
        jw.field("windows", pooled_run.windows);
        jw.field("events", pooled_run.events);
        jw.field("committed", pooled_run.committed);
        jw.field("blocks", pooled_run.blocks);
        jw.field("chain_fingerprint", hex64(pooled_run.chain_fp));
        jw.field("state_fingerprint", hex64(pooled_run.state_fp));
        jw.field("equal", ok);
        jw.end_object();

        tw.begin_object();
        tw.field("layout", layout.label);
        tw.field("wall_inline_s", inline_run.wall);
        if (partitioned) {
            tw.field("wall_pooled_s", pooled_run.wall);
            tw.field("speedup_vs_serial", speedup);
        }
        tw.end_object();
    }
    jw.end_array();
    jw.end_object();
    json << "\n";
    tw.end_array();
    tw.end_object();
    timing_json << "\n";

    table.print(std::cout);
    const double wall =
        std::chrono::duration<double>(Clock::now() - started).count();
    std::cout << "\n*wall-clock columns time net.run() only and are "
                 "host-dependent (stdout + timing JSON,\nnever the primary "
                 "JSON).  Pool: "
              << pool_size << " worker(s), host: " << hw_threads
              << " hardware thread(s).\n";
    fl::harness::print_sweep_footer(std::cout, layouts.size(), pool_size, wall);

    if (cli.json_enabled && !cli.json_path.empty()) {
        std::ofstream out(cli.json_path);
        out << json.str();
        std::cout << "wrote " << cli.json_path << "\n";
        const std::string tpath = timing_path(cli.json_path);
        std::ofstream tout(tpath);
        tout << timing_json.str();
        std::cout << "wrote " << tpath << " (host-dependent timings)\n";
    }

    if (!all_ok) {
        std::cout << "PARTITION EQUIVALENCE VIOLATION (see divergences above)\n";
        return 1;
    }
    if (min_speedup_flag.value > 0) {
        const double required =
            static_cast<double>(min_speedup_flag.value) / 100.0;
        if (roles_speedup < required) {
            std::cout << "PARTITION SPEEDUP REGRESSION: roles layout "
                      << fl::harness::fmt(roles_speedup, 2) << "x < required "
                      << fl::harness::fmt(required, 2) << "x\n";
            return 1;
        }
        std::cout << "speedup gate passed: roles layout "
                  << fl::harness::fmt(roles_speedup, 2) << "x >= "
                  << fl::harness::fmt(required, 2) << "x\n";
    }
    return 0;
}
