// Microbenchmarks M3/M4 — ordering-side costs: priority consolidation
// policies and the Multi-Queue Block Generator's per-block work.
#include <benchmark/benchmark.h>

#include "mq/broker.h"
#include "orderer/block_generator.h"
#include "policy/consolidation_policy.h"

namespace {

using namespace fl;

void BM_ConsolidationPolicy(benchmark::State& state) {
    const char* specs[] = {"kofn:2", "average", "median", "best", "worst"};
    const auto policy =
        policy::make_consolidation_policy(specs[state.range(0)]);
    const std::vector<PriorityLevel> votes = {1, 1, 2, 1, 0, 1, 1, 2};
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy->consolidate(votes, 3));
    }
    state.SetLabel(specs[state.range(0)]);
}
BENCHMARK(BM_ConsolidationPolicy)->DenseRange(0, 4);

/// Full Algorithm-1 cycle: N backlogged queues -> one 500-tx block.
void BM_MultiQueueBlockGeneration(benchmark::State& state) {
    const std::uint32_t levels = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        sim::Simulator sim;
        sim::LinkParams link;
        link.base_latency = Duration::zero();
        link.jitter_stddev = Duration::zero();
        sim::Network net(sim, Rng(1), link);
        mq::Broker<orderer::OrderedRecord> broker(sim, net);
        orderer::GeneratorConfig cfg;
        cfg.block_size = 500;
        cfg.timeout = Duration::seconds(10);
        std::uint32_t per = 500 / levels;
        cfg.quotas.assign(levels, per);
        cfg.quotas[0] += 500 - per * levels;
        orderer::MultiQueueBlockGenerator::Subscriptions subs;
        for (std::uint32_t l = 0; l < levels; ++l) {
            broker.create_topic("p" + std::to_string(l));
            subs.push_back(broker.subscribe("p" + std::to_string(l), NodeId{1}));
        }
        std::size_t cuts = 0;
        auto env = std::make_shared<ledger::Envelope>();
        orderer::MultiQueueBlockGenerator gen(
            sim, cfg, std::move(subs), [](BlockNumber) {},
            [&cuts](orderer::CutResult) { ++cuts; });
        for (std::uint32_t l = 0; l < levels; ++l) {
            for (std::uint32_t i = 0; i < cfg.quotas[l]; ++i) {
                broker.produce("p" + std::to_string(l), NodeId{2}, 100,
                               orderer::OrderedRecord::transaction(env));
            }
        }
        state.ResumeTiming();
        sim.run();
        benchmark::DoNotOptimize(cuts);
    }
    state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_MultiQueueBlockGeneration)->Arg(1)->Arg(3)->Arg(8);

}  // namespace
