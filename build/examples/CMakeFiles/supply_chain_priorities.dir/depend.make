# Empty dependencies file for supply_chain_priorities.
# This may be replaced when dependencies are built.
