file(REMOVE_RECURSE
  "CMakeFiles/supply_chain_priorities.dir/supply_chain_priorities.cpp.o"
  "CMakeFiles/supply_chain_priorities.dir/supply_chain_priorities.cpp.o.d"
  "supply_chain_priorities"
  "supply_chain_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_chain_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
