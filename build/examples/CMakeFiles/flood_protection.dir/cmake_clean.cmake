file(REMOVE_RECURSE
  "CMakeFiles/flood_protection.dir/flood_protection.cpp.o"
  "CMakeFiles/flood_protection.dir/flood_protection.cpp.o.d"
  "flood_protection"
  "flood_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flood_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
