# Empty dependencies file for flood_protection.
# This may be replaced when dependencies are built.
