file(REMOVE_RECURSE
  "CMakeFiles/fl_harness.dir/experiment.cpp.o"
  "CMakeFiles/fl_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/fl_harness.dir/report.cpp.o"
  "CMakeFiles/fl_harness.dir/report.cpp.o.d"
  "CMakeFiles/fl_harness.dir/workload.cpp.o"
  "CMakeFiles/fl_harness.dir/workload.cpp.o.d"
  "libfl_harness.a"
  "libfl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
