file(REMOVE_RECURSE
  "libfl_client.a"
)
