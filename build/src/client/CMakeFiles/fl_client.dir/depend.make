# Empty dependencies file for fl_client.
# This may be replaced when dependencies are built.
