file(REMOVE_RECURSE
  "CMakeFiles/fl_client.dir/client.cpp.o"
  "CMakeFiles/fl_client.dir/client.cpp.o.d"
  "libfl_client.a"
  "libfl_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
