# Empty compiler generated dependencies file for fl_orderer.
# This may be replaced when dependencies are built.
