file(REMOVE_RECURSE
  "libfl_orderer.a"
)
