file(REMOVE_RECURSE
  "CMakeFiles/fl_orderer.dir/block_generator.cpp.o"
  "CMakeFiles/fl_orderer.dir/block_generator.cpp.o.d"
  "CMakeFiles/fl_orderer.dir/consolidator.cpp.o"
  "CMakeFiles/fl_orderer.dir/consolidator.cpp.o.d"
  "CMakeFiles/fl_orderer.dir/osn.cpp.o"
  "CMakeFiles/fl_orderer.dir/osn.cpp.o.d"
  "libfl_orderer.a"
  "libfl_orderer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_orderer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
