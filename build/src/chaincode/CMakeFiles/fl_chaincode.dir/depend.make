# Empty dependencies file for fl_chaincode.
# This may be replaced when dependencies are built.
