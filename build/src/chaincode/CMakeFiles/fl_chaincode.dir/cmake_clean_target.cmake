file(REMOVE_RECURSE
  "libfl_chaincode.a"
)
