file(REMOVE_RECURSE
  "CMakeFiles/fl_chaincode.dir/analytics.cpp.o"
  "CMakeFiles/fl_chaincode.dir/analytics.cpp.o.d"
  "CMakeFiles/fl_chaincode.dir/asset_transfer.cpp.o"
  "CMakeFiles/fl_chaincode.dir/asset_transfer.cpp.o.d"
  "CMakeFiles/fl_chaincode.dir/chaincode.cpp.o"
  "CMakeFiles/fl_chaincode.dir/chaincode.cpp.o.d"
  "CMakeFiles/fl_chaincode.dir/record_keeper.cpp.o"
  "CMakeFiles/fl_chaincode.dir/record_keeper.cpp.o.d"
  "CMakeFiles/fl_chaincode.dir/registry.cpp.o"
  "CMakeFiles/fl_chaincode.dir/registry.cpp.o.d"
  "CMakeFiles/fl_chaincode.dir/supply_chain.cpp.o"
  "CMakeFiles/fl_chaincode.dir/supply_chain.cpp.o.d"
  "libfl_chaincode.a"
  "libfl_chaincode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_chaincode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
