
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chaincode/analytics.cpp" "src/chaincode/CMakeFiles/fl_chaincode.dir/analytics.cpp.o" "gcc" "src/chaincode/CMakeFiles/fl_chaincode.dir/analytics.cpp.o.d"
  "/root/repo/src/chaincode/asset_transfer.cpp" "src/chaincode/CMakeFiles/fl_chaincode.dir/asset_transfer.cpp.o" "gcc" "src/chaincode/CMakeFiles/fl_chaincode.dir/asset_transfer.cpp.o.d"
  "/root/repo/src/chaincode/chaincode.cpp" "src/chaincode/CMakeFiles/fl_chaincode.dir/chaincode.cpp.o" "gcc" "src/chaincode/CMakeFiles/fl_chaincode.dir/chaincode.cpp.o.d"
  "/root/repo/src/chaincode/record_keeper.cpp" "src/chaincode/CMakeFiles/fl_chaincode.dir/record_keeper.cpp.o" "gcc" "src/chaincode/CMakeFiles/fl_chaincode.dir/record_keeper.cpp.o.d"
  "/root/repo/src/chaincode/registry.cpp" "src/chaincode/CMakeFiles/fl_chaincode.dir/registry.cpp.o" "gcc" "src/chaincode/CMakeFiles/fl_chaincode.dir/registry.cpp.o.d"
  "/root/repo/src/chaincode/supply_chain.cpp" "src/chaincode/CMakeFiles/fl_chaincode.dir/supply_chain.cpp.o" "gcc" "src/chaincode/CMakeFiles/fl_chaincode.dir/supply_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ledger/CMakeFiles/fl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/fl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
