file(REMOVE_RECURSE
  "CMakeFiles/fl_common.dir/bytes.cpp.o"
  "CMakeFiles/fl_common.dir/bytes.cpp.o.d"
  "CMakeFiles/fl_common.dir/log.cpp.o"
  "CMakeFiles/fl_common.dir/log.cpp.o.d"
  "CMakeFiles/fl_common.dir/rng.cpp.o"
  "CMakeFiles/fl_common.dir/rng.cpp.o.d"
  "CMakeFiles/fl_common.dir/stats.cpp.o"
  "CMakeFiles/fl_common.dir/stats.cpp.o.d"
  "libfl_common.a"
  "libfl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
