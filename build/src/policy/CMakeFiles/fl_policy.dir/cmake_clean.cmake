file(REMOVE_RECURSE
  "CMakeFiles/fl_policy.dir/block_formation_policy.cpp.o"
  "CMakeFiles/fl_policy.dir/block_formation_policy.cpp.o.d"
  "CMakeFiles/fl_policy.dir/consolidation_policy.cpp.o"
  "CMakeFiles/fl_policy.dir/consolidation_policy.cpp.o.d"
  "CMakeFiles/fl_policy.dir/endorsement_policy.cpp.o"
  "CMakeFiles/fl_policy.dir/endorsement_policy.cpp.o.d"
  "libfl_policy.a"
  "libfl_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
