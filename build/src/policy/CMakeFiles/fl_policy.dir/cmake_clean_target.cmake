file(REMOVE_RECURSE
  "libfl_policy.a"
)
