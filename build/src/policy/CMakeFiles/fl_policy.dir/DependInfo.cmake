
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/block_formation_policy.cpp" "src/policy/CMakeFiles/fl_policy.dir/block_formation_policy.cpp.o" "gcc" "src/policy/CMakeFiles/fl_policy.dir/block_formation_policy.cpp.o.d"
  "/root/repo/src/policy/consolidation_policy.cpp" "src/policy/CMakeFiles/fl_policy.dir/consolidation_policy.cpp.o" "gcc" "src/policy/CMakeFiles/fl_policy.dir/consolidation_policy.cpp.o.d"
  "/root/repo/src/policy/endorsement_policy.cpp" "src/policy/CMakeFiles/fl_policy.dir/endorsement_policy.cpp.o" "gcc" "src/policy/CMakeFiles/fl_policy.dir/endorsement_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/fl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fl_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
