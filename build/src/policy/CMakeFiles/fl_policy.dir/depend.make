# Empty dependencies file for fl_policy.
# This may be replaced when dependencies are built.
