
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ledger/block.cpp" "src/ledger/CMakeFiles/fl_ledger.dir/block.cpp.o" "gcc" "src/ledger/CMakeFiles/fl_ledger.dir/block.cpp.o.d"
  "/root/repo/src/ledger/block_store.cpp" "src/ledger/CMakeFiles/fl_ledger.dir/block_store.cpp.o" "gcc" "src/ledger/CMakeFiles/fl_ledger.dir/block_store.cpp.o.d"
  "/root/repo/src/ledger/rwset.cpp" "src/ledger/CMakeFiles/fl_ledger.dir/rwset.cpp.o" "gcc" "src/ledger/CMakeFiles/fl_ledger.dir/rwset.cpp.o.d"
  "/root/repo/src/ledger/transaction.cpp" "src/ledger/CMakeFiles/fl_ledger.dir/transaction.cpp.o" "gcc" "src/ledger/CMakeFiles/fl_ledger.dir/transaction.cpp.o.d"
  "/root/repo/src/ledger/world_state.cpp" "src/ledger/CMakeFiles/fl_ledger.dir/world_state.cpp.o" "gcc" "src/ledger/CMakeFiles/fl_ledger.dir/world_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fl_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
