file(REMOVE_RECURSE
  "libfl_ledger.a"
)
