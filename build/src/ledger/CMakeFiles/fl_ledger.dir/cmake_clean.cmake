file(REMOVE_RECURSE
  "CMakeFiles/fl_ledger.dir/block.cpp.o"
  "CMakeFiles/fl_ledger.dir/block.cpp.o.d"
  "CMakeFiles/fl_ledger.dir/block_store.cpp.o"
  "CMakeFiles/fl_ledger.dir/block_store.cpp.o.d"
  "CMakeFiles/fl_ledger.dir/rwset.cpp.o"
  "CMakeFiles/fl_ledger.dir/rwset.cpp.o.d"
  "CMakeFiles/fl_ledger.dir/transaction.cpp.o"
  "CMakeFiles/fl_ledger.dir/transaction.cpp.o.d"
  "CMakeFiles/fl_ledger.dir/world_state.cpp.o"
  "CMakeFiles/fl_ledger.dir/world_state.cpp.o.d"
  "libfl_ledger.a"
  "libfl_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
