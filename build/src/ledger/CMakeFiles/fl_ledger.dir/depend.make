# Empty dependencies file for fl_ledger.
# This may be replaced when dependencies are built.
