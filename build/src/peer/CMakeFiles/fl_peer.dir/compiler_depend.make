# Empty compiler generated dependencies file for fl_peer.
# This may be replaced when dependencies are built.
