file(REMOVE_RECURSE
  "libfl_peer.a"
)
