file(REMOVE_RECURSE
  "CMakeFiles/fl_peer.dir/endorser.cpp.o"
  "CMakeFiles/fl_peer.dir/endorser.cpp.o.d"
  "CMakeFiles/fl_peer.dir/peer.cpp.o"
  "CMakeFiles/fl_peer.dir/peer.cpp.o.d"
  "CMakeFiles/fl_peer.dir/priority_calculator.cpp.o"
  "CMakeFiles/fl_peer.dir/priority_calculator.cpp.o.d"
  "CMakeFiles/fl_peer.dir/validator.cpp.o"
  "CMakeFiles/fl_peer.dir/validator.cpp.o.d"
  "libfl_peer.a"
  "libfl_peer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
