
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/peer/endorser.cpp" "src/peer/CMakeFiles/fl_peer.dir/endorser.cpp.o" "gcc" "src/peer/CMakeFiles/fl_peer.dir/endorser.cpp.o.d"
  "/root/repo/src/peer/peer.cpp" "src/peer/CMakeFiles/fl_peer.dir/peer.cpp.o" "gcc" "src/peer/CMakeFiles/fl_peer.dir/peer.cpp.o.d"
  "/root/repo/src/peer/priority_calculator.cpp" "src/peer/CMakeFiles/fl_peer.dir/priority_calculator.cpp.o" "gcc" "src/peer/CMakeFiles/fl_peer.dir/priority_calculator.cpp.o.d"
  "/root/repo/src/peer/validator.cpp" "src/peer/CMakeFiles/fl_peer.dir/validator.cpp.o" "gcc" "src/peer/CMakeFiles/fl_peer.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/fl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/chaincode/CMakeFiles/fl_chaincode.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/fl_policy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
