file(REMOVE_RECURSE
  "CMakeFiles/fl_sim.dir/cpu.cpp.o"
  "CMakeFiles/fl_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/fl_sim.dir/network.cpp.o"
  "CMakeFiles/fl_sim.dir/network.cpp.o.d"
  "CMakeFiles/fl_sim.dir/simulator.cpp.o"
  "CMakeFiles/fl_sim.dir/simulator.cpp.o.d"
  "libfl_sim.a"
  "libfl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
