file(REMOVE_RECURSE
  "CMakeFiles/fl_crypto.dir/hmac.cpp.o"
  "CMakeFiles/fl_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/fl_crypto.dir/merkle.cpp.o"
  "CMakeFiles/fl_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/fl_crypto.dir/sha256.cpp.o"
  "CMakeFiles/fl_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/fl_crypto.dir/signature.cpp.o"
  "CMakeFiles/fl_crypto.dir/signature.cpp.o.d"
  "libfl_crypto.a"
  "libfl_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
