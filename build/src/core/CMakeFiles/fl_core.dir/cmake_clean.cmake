file(REMOVE_RECURSE
  "CMakeFiles/fl_core.dir/fabric_network.cpp.o"
  "CMakeFiles/fl_core.dir/fabric_network.cpp.o.d"
  "CMakeFiles/fl_core.dir/metrics.cpp.o"
  "CMakeFiles/fl_core.dir/metrics.cpp.o.d"
  "libfl_core.a"
  "libfl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
