# Empty dependencies file for calculator_test.
# This may be replaced when dependencies are built.
