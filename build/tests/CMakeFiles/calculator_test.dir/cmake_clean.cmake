file(REMOVE_RECURSE
  "CMakeFiles/calculator_test.dir/peer/calculator_test.cpp.o"
  "CMakeFiles/calculator_test.dir/peer/calculator_test.cpp.o.d"
  "calculator_test"
  "calculator_test.pdb"
  "calculator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calculator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
