file(REMOVE_RECURSE
  "CMakeFiles/endorsement_policy_test.dir/policy/endorsement_policy_test.cpp.o"
  "CMakeFiles/endorsement_policy_test.dir/policy/endorsement_policy_test.cpp.o.d"
  "endorsement_policy_test"
  "endorsement_policy_test.pdb"
  "endorsement_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endorsement_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
