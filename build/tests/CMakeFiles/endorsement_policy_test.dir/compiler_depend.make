# Empty compiler generated dependencies file for endorsement_policy_test.
# This may be replaced when dependencies are built.
