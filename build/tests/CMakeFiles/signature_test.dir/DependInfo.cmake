
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto/signature_test.cpp" "tests/CMakeFiles/signature_test.dir/crypto/signature_test.cpp.o" "gcc" "tests/CMakeFiles/signature_test.dir/crypto/signature_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/fl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/fl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/fl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/chaincode/CMakeFiles/fl_chaincode.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/fl_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/peer/CMakeFiles/fl_peer.dir/DependInfo.cmake"
  "/root/repo/build/src/orderer/CMakeFiles/fl_orderer.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/fl_client.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/fl_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
