file(REMOVE_RECURSE
  "CMakeFiles/byzantine_test.dir/integration/byzantine_test.cpp.o"
  "CMakeFiles/byzantine_test.dir/integration/byzantine_test.cpp.o.d"
  "byzantine_test"
  "byzantine_test.pdb"
  "byzantine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
