# Empty compiler generated dependencies file for consolidator_test.
# This may be replaced when dependencies are built.
