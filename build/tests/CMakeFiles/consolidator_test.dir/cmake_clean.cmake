file(REMOVE_RECURSE
  "CMakeFiles/consolidator_test.dir/orderer/consolidator_test.cpp.o"
  "CMakeFiles/consolidator_test.dir/orderer/consolidator_test.cpp.o.d"
  "consolidator_test"
  "consolidator_test.pdb"
  "consolidator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
