file(REMOVE_RECURSE
  "CMakeFiles/endorser_test.dir/peer/endorser_test.cpp.o"
  "CMakeFiles/endorser_test.dir/peer/endorser_test.cpp.o.d"
  "endorser_test"
  "endorser_test.pdb"
  "endorser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endorser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
