# Empty dependencies file for endorser_test.
# This may be replaced when dependencies are built.
