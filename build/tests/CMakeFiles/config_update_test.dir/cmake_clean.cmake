file(REMOVE_RECURSE
  "CMakeFiles/config_update_test.dir/orderer/config_update_test.cpp.o"
  "CMakeFiles/config_update_test.dir/orderer/config_update_test.cpp.o.d"
  "config_update_test"
  "config_update_test.pdb"
  "config_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
