# Empty compiler generated dependencies file for rwset_test.
# This may be replaced when dependencies are built.
