file(REMOVE_RECURSE
  "CMakeFiles/rwset_test.dir/ledger/rwset_test.cpp.o"
  "CMakeFiles/rwset_test.dir/ledger/rwset_test.cpp.o.d"
  "rwset_test"
  "rwset_test.pdb"
  "rwset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
