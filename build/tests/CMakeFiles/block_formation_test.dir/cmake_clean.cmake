file(REMOVE_RECURSE
  "CMakeFiles/block_formation_test.dir/policy/block_formation_test.cpp.o"
  "CMakeFiles/block_formation_test.dir/policy/block_formation_test.cpp.o.d"
  "block_formation_test"
  "block_formation_test.pdb"
  "block_formation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_formation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
