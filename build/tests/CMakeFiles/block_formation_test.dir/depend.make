# Empty dependencies file for block_formation_test.
# This may be replaced when dependencies are built.
