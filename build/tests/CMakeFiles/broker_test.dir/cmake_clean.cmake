file(REMOVE_RECURSE
  "CMakeFiles/broker_test.dir/mq/broker_test.cpp.o"
  "CMakeFiles/broker_test.dir/mq/broker_test.cpp.o.d"
  "broker_test"
  "broker_test.pdb"
  "broker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
