# Empty dependencies file for ttc_determinism_test.
# This may be replaced when dependencies are built.
