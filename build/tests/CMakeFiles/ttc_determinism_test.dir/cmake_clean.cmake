file(REMOVE_RECURSE
  "CMakeFiles/ttc_determinism_test.dir/orderer/ttc_determinism_test.cpp.o"
  "CMakeFiles/ttc_determinism_test.dir/orderer/ttc_determinism_test.cpp.o.d"
  "ttc_determinism_test"
  "ttc_determinism_test.pdb"
  "ttc_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttc_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
