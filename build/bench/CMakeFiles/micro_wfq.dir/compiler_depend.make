# Empty compiler generated dependencies file for micro_wfq.
# This may be replaced when dependencies are built.
