file(REMOVE_RECURSE
  "CMakeFiles/micro_wfq.dir/micro_wfq.cpp.o"
  "CMakeFiles/micro_wfq.dir/micro_wfq.cpp.o.d"
  "micro_wfq"
  "micro_wfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_wfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
