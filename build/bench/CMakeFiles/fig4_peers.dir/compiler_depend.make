# Empty compiler generated dependencies file for fig4_peers.
# This may be replaced when dependencies are built.
