file(REMOVE_RECURSE
  "CMakeFiles/fig4_peers.dir/fig4_peers.cpp.o"
  "CMakeFiles/fig4_peers.dir/fig4_peers.cpp.o.d"
  "fig4_peers"
  "fig4_peers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_peers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
