# Empty dependencies file for ablation_breakdown.
# This may be replaced when dependencies are built.
