file(REMOVE_RECURSE
  "CMakeFiles/ablation_breakdown.dir/ablation_breakdown.cpp.o"
  "CMakeFiles/ablation_breakdown.dir/ablation_breakdown.cpp.o.d"
  "ablation_breakdown"
  "ablation_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
