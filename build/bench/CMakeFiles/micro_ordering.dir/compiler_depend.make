# Empty compiler generated dependencies file for micro_ordering.
# This may be replaced when dependencies are built.
