file(REMOVE_RECURSE
  "CMakeFiles/micro_ordering.dir/micro_ordering.cpp.o"
  "CMakeFiles/micro_ordering.dir/micro_ordering.cpp.o.d"
  "micro_ordering"
  "micro_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
