# Empty compiler generated dependencies file for ablation_ttc.
# This may be replaced when dependencies are built.
