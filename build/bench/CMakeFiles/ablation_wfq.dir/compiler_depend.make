# Empty compiler generated dependencies file for ablation_wfq.
# This may be replaced when dependencies are built.
