file(REMOVE_RECURSE
  "CMakeFiles/ablation_wfq.dir/ablation_wfq.cpp.o"
  "CMakeFiles/ablation_wfq.dir/ablation_wfq.cpp.o.d"
  "ablation_wfq"
  "ablation_wfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
