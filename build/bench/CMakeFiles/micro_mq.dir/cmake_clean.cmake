file(REMOVE_RECURSE
  "CMakeFiles/micro_mq.dir/micro_mq.cpp.o"
  "CMakeFiles/micro_mq.dir/micro_mq.cpp.o.d"
  "micro_mq"
  "micro_mq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
