# Empty dependencies file for micro_mq.
# This may be replaced when dependencies are built.
