# Empty compiler generated dependencies file for fig3_block_policy.
# This may be replaced when dependencies are built.
