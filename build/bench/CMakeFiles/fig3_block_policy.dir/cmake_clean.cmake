file(REMOVE_RECURSE
  "CMakeFiles/fig3_block_policy.dir/fig3_block_policy.cpp.o"
  "CMakeFiles/fig3_block_policy.dir/fig3_block_policy.cpp.o.d"
  "fig3_block_policy"
  "fig3_block_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_block_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
