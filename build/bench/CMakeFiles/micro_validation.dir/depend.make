# Empty dependencies file for micro_validation.
# This may be replaced when dependencies are built.
