file(REMOVE_RECURSE
  "CMakeFiles/micro_validation.dir/micro_validation.cpp.o"
  "CMakeFiles/micro_validation.dir/micro_validation.cpp.o.d"
  "micro_validation"
  "micro_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
