# Empty compiler generated dependencies file for fig5_send_rate.
# This may be replaced when dependencies are built.
