file(REMOVE_RECURSE
  "CMakeFiles/fig6_fairness.dir/fig6_fairness.cpp.o"
  "CMakeFiles/fig6_fairness.dir/fig6_fairness.cpp.o.d"
  "fig6_fairness"
  "fig6_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
