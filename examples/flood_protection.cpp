// Flood protection / resource fairness demo (the paper's §5.5 scenario).
//
// Three clients share a channel, one priority class each with equal weights
// (block formation policy 1:1:1).  Client C1 misbehaves and ramps its send
// rate; the demo prints each client's latency with vanilla FIFO ordering
// and with per-client fair queueing, plus the malicious-client experiment
// from §3.1: a client that drops unfavourable endorsements cannot promote
// its own transactions.
//
//   $ ./build/examples/flood_protection
#include <iostream>

#include "core/fabric_network.h"
#include "harness/report.h"
#include "harness/workload.h"

namespace {

fl::core::NetworkConfig make_config(bool priority_enabled) {
    using namespace fl;
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = 55;
    cfg.channel.priority_enabled = priority_enabled;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("1:1:1");
    cfg.channel.block_size = 150;
    cfg.channel.block_timeout = Duration::millis(500);
    cfg.osn_params.consume_per_record_cost = Duration::micros(4000);  // ~250 tps
    cfg.calculator_factory = [] {
        return std::make_unique<fl::peer::ClientClassCalculator>(
            std::unordered_map<fl::ClientId, fl::PriorityLevel>{
                {fl::ClientId{0}, 0}, {fl::ClientId{1}, 1}, {fl::ClientId{2}, 2}},
            0);
    };
    return cfg;
}

fl::core::MetricsCollector run(bool priority_enabled, double flood_tps) {
    using namespace fl;
    auto cfg = make_config(priority_enabled);
    core::FabricNetwork net(cfg);
    core::MetricsCollector metrics;
    net.set_tx_sink([&metrics](const client::TxRecord& r) { metrics.record(r); });

    harness::Workload workload;
    for (std::size_t c = 0; c < 3; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = c == 0 ? flood_tps : 70.0;
        load.generate = harness::single_chaincode("record_keeper");
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(
        static_cast<std::uint64_t>((flood_tps + 140.0) * 10.0));
    harness::WorkloadDriver driver(net, std::move(workload), Rng(cfg.seed + 1));
    driver.start();
    net.run();
    return metrics;
}

}  // namespace

int main() {
    using namespace fl;

    harness::print_banner(std::cout, "Flood protection (paper §5.5)",
                          "C2, C3 steady at 70 tps; C1 ramps; capacity ~250 tps");

    harness::Table table({"C1 rate", "mode", "C1 avg (s)", "C2 avg (s)", "C3 avg (s)"});
    for (const double flood : {70.0, 200.0, 400.0}) {
        const auto fifo = run(false, flood);
        const auto fair = run(true, flood);
        table.add_row({harness::fmt(flood, 0) + " tps", "FIFO",
                       harness::fmt(fifo.avg_latency_for_client(ClientId{0}), 2),
                       harness::fmt(fifo.avg_latency_for_client(ClientId{1}), 2),
                       harness::fmt(fifo.avg_latency_for_client(ClientId{2}), 2)});
        table.add_row({"", "fair",
                       harness::fmt(fair.avg_latency_for_client(ClientId{0}), 2),
                       harness::fmt(fair.avg_latency_for_client(ClientId{1}), 2),
                       harness::fmt(fair.avg_latency_for_client(ClientId{2}), 2)});
    }
    table.print(std::cout);
    std::cout << "\nUnder FIFO, C1's flood inflates everyone's latency; with fair "
                 "queueing only\nC1 queues behind its own traffic.\n";

    // -- §3.1: the malicious client cannot forge priority -------------------
    harness::print_banner(std::cout, "Malicious client (paper §3.1)",
                          "dropping unfavourable endorsements cannot promote a tx");
    auto cfg = make_config(true);
    cfg.client_params.drop_unfavorable_endorsements = true;
    core::FabricNetwork net(cfg);
    core::MetricsCollector metrics;
    net.set_tx_sink([&metrics](const client::TxRecord& r) { metrics.record(r); });
    // Client 2 is mapped to the lowest class; every endorser votes level 2,
    // so "keeping only the best votes" keeps all of them — and forging the
    // value itself would break the endorser signatures (see endorser tests).
    for (int i = 0; i < 50; ++i) {
        net.clients()[2]->submit("record_keeper", "log",
                                 {"mal" + std::to_string(i), "x"});
    }
    net.run();
    const auto& by_priority = metrics.by_priority();
    const bool still_low = by_priority.size() == 1 && by_priority.begin()->first == 2;
    std::cout << "malicious client's " << metrics.committed_valid()
              << " txs all committed at priority level "
              << by_priority.begin()->first << " -> promotion "
              << (still_low ? "impossible" : "HAPPENED (bug!)") << "\n";
    return still_low ? 0 : 1;
}
