// Quickstart: bring up a 4-org network with 3 priority levels, submit a
// burst of mixed-priority transactions, and inspect what committed.
//
//   $ ./build/examples/quickstart
//
// Walks the whole paper pipeline: endorsement with priority votes ->
// client collection -> OSN priority consolidation -> multi-queue block
// generation (weighted fair queueing + TTC coordination) -> prioritized
// validation -> commit + notification.
#include <iostream>

#include "core/fabric_network.h"
#include "harness/report.h"
#include "harness/workload.h"

int main() {
    using namespace fl;

    // 1. Configure the network (defaults mirror the paper's §5.1 setup).
    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.consolidation_spec = "kofn:2";
    cfg.channel.block_size = 100;   // small blocks so the demo cuts several
    cfg.channel.block_timeout = Duration::millis(500);
    cfg.seed = 7;

    core::FabricNetwork net(cfg);

    // 2. Collect completions.
    core::MetricsCollector metrics;
    net.set_tx_sink([&metrics](const client::TxRecord& r) { metrics.record(r); });

    // 3. Drive load: 3 clients, mixed chaincodes in the paper's 1:2:1
    //    high:medium:low arrival ratio, 600 transactions at 300 tps total.
    harness::Workload workload;
    for (std::size_t c = 0; c < net.clients().size(); ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = 100.0;
        load.generate = harness::priority_class_mix({1.0, 2.0, 1.0});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(600);

    harness::WorkloadDriver driver(net, std::move(workload), Rng(99));
    driver.start();

    // 4. Run the simulation to completion.
    net.run();

    // 5. Report.
    harness::print_banner(std::cout, "FairLedger quickstart",
                          "4 orgs, 3 OSNs, 3 clients, policy 2:3:1, kofn:2");

    harness::Table table({"priority level", "committed", "avg latency (ms)",
                          "p95 latency (ms)"});
    for (const auto& [level, hist] : metrics.by_priority()) {
        table.add_row({std::to_string(level), std::to_string(hist.count()),
                       harness::fmt(hist.mean() * 1e3, 1),
                       harness::fmt(hist.percentile(95) * 1e3, 1)});
    }
    table.print(std::cout);

    std::cout << "\ncommitted valid:      " << metrics.committed_valid()
              << "\ncommitted invalid:    " << metrics.committed_invalid()
              << "\nclient-side failures: " << metrics.client_failures()
              << "\nblocks on chain:      " << net.peers().front()->chain().height()
              << "\nthroughput:           " << harness::fmt(metrics.throughput_tps(), 1)
              << " tps\n";

    std::cout << "\nconsistency: chains "
              << (net.chains_identical() ? "identical" : "DIVERGED") << ", states "
              << (net.states_identical() ? "identical" : "DIVERGED") << ", OSN blocks "
              << (net.osn_blocks_identical() ? "identical" : "DIVERGED") << "\n";

    const bool ok = net.chains_identical() && net.states_identical() &&
                    net.osn_blocks_identical() &&
                    metrics.committed_valid() == 600;
    return ok ? 0 : 1;
}
