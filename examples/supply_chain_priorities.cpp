// Supply-chain scenario (the paper's §1 motivation): a consortium where
// business-critical payment transactions share the blockchain with shipment
// tracking and a flood of bulk record-keeping traffic.
//
// We run the same mixed workload twice — vanilla FIFO ordering vs the
// paper's weighted-fair multi-queue ordering — and show how the payment
// and shipment transactions fare when the record-keeping flood exceeds the
// network's ordering capacity.
//
//   $ ./build/examples/supply_chain_priorities
#include <iostream>

#include "core/fabric_network.h"
#include "harness/report.h"
#include "harness/workload.h"

namespace {

struct ScenarioResult {
    fl::core::MetricsCollector metrics;
    bool consistent = false;
};

ScenarioResult run_scenario(bool priority_enabled) {
    using namespace fl;

    core::NetworkConfig cfg;
    cfg.orgs = 4;  // manufacturer, logistics provider, retailer, financier
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = 2018;
    cfg.channel.priority_enabled = priority_enabled;
    cfg.channel.priority_levels = 3;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 200;
    cfg.channel.block_timeout = Duration::millis(500);
    // Ordering capacity ~260 tps for this smaller deployment.
    cfg.osn_params.consume_per_record_cost = Duration::micros(3800);

    core::FabricNetwork net(cfg);

    ScenarioResult result;
    net.set_tx_sink(
        [&result](const client::TxRecord& r) { result.metrics.record(r); });

    // Client 0: the financier — payments (asset_transfer, high priority).
    // Client 1: the logistics provider — shipment updates (supply_chain).
    // Client 2: a batch process flooding audit records (record_keeper).
    harness::Workload workload;
    const double rates[3] = {40.0, 80.0, 280.0};  // the flood dominates
    const char* chaincodes[3] = {"asset_transfer", "supply_chain", "record_keeper"};
    for (std::size_t c = 0; c < 3; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = rates[c];
        load.generate = harness::single_chaincode(chaincodes[c]);
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(8000);

    harness::WorkloadDriver driver(net, std::move(workload), Rng(7));
    driver.start();
    net.run();

    result.consistent = net.chains_identical() && net.states_identical() &&
                        net.osn_blocks_identical();
    return result;
}

}  // namespace

int main() {
    using namespace fl;

    harness::print_banner(
        std::cout, "Supply-chain consortium under a record-keeping flood",
        "payments 40 tps, shipments 80 tps, audit records 280 tps; "
        "ordering capacity ~260 tps");

    const ScenarioResult fifo = run_scenario(false);
    const ScenarioResult fair = run_scenario(true);

    harness::Table table({"workload (chaincode)", "FIFO avg (s)", "FIFO p95 (s)",
                          "fair avg (s)", "fair p95 (s)"});
    for (const char* cc : {"asset_transfer", "supply_chain", "record_keeper"}) {
        const auto& f = fifo.metrics.by_chaincode();
        const auto& p = fair.metrics.by_chaincode();
        if (!f.contains(cc) || !p.contains(cc)) continue;
        table.add_row({cc, harness::fmt(f.at(cc).mean(), 2),
                       harness::fmt(f.at(cc).percentile(95), 2),
                       harness::fmt(p.at(cc).mean(), 2),
                       harness::fmt(p.at(cc).percentile(95), 2)});
    }
    table.print(std::cout);

    const double payment_speedup =
        fifo.metrics.by_chaincode().at("asset_transfer").mean() /
        fair.metrics.by_chaincode().at("asset_transfer").mean();
    std::cout << "\nWith FIFO ordering the flood delays business-critical payments; "
              << "with the\npaper's weighted fair queueing, payments commit "
              << harness::fmt(payment_speedup, 1)
              << "x faster while the bulk\nrecords absorb the queueing.\n"
              << "consistency: " << (fifo.consistent && fair.consistent ? "ok" : "VIOLATED")
              << "\n";
    return fifo.consistent && fair.consistent ? 0 : 1;
}
