// Raft leader failover mid-block (DESIGN.md §15).
//
// The ordering service runs on the Raft backend: a 3-node cluster whose
// committed log feeds every OSN's block generator.  At t=1.5s — in the
// middle of the block stream — the Raft leader is killed.  Submissions keep
// arriving; the surviving nodes detect the stall, elect a successor (with a
// higher term), and the new leader re-proposes every in-flight submission.
// Commit-time sequence dedup makes the retry exactly-once, so TTC markers
// and transactions land once each, block cuts stay consistent across OSNs,
// and the post-failover chain verifies end to end.
//
//   $ ./build/examples/raft_leader_failover
#include <iostream>

#include "core/fabric_network.h"
#include "harness/report.h"
#include "harness/workload.h"
#include "obs/trace.h"

int main() {
    using namespace fl;

    harness::print_banner(std::cout, "Raft leader failover",
                          "3-node Raft ordering service; leader killed at "
                          "t=1.5s mid-block, cluster restarted at t=3s");

    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = 7;
    cfg.ordering_backend = orderer::OrderingBackendKind::kRaft;
    cfg.raft.nodes = 3;
    cfg.channel.priority_enabled = true;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 50;
    cfg.channel.block_timeout = Duration::millis(200);
    cfg.client_params.retry.enabled = true;
    cfg.client_params.retry.commit_timeout = Duration::seconds(3);

    // The fault plan: kill the leader at 1.5 s; revive the crashed node at
    // 3 s (it rejoins as a follower and catches up from the new leader).
    cfg.faults.schedule = {
        {Duration::from_seconds(1.5), fault::FaultKind::kRaftLeaderKill, 0},
        {Duration::seconds(3), fault::FaultKind::kRaftNodeRestart, raft::kAllNodes},
    };

    core::FabricNetwork net(cfg);
    core::MetricsCollector metrics;
    net.set_tx_sink([&metrics](const client::TxRecord& r) { metrics.record(r); });
    obs::TraceSink trace;
    net.set_trace_sink(&trace);

    harness::Workload workload;
    for (std::size_t c = 0; c < 3; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = 80.0;
        load.generate = harness::priority_class_mix({1, 2, 1});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(1'200);  // ~5 s of load, spanning the failover
    harness::WorkloadDriver driver(net, std::move(workload), Rng(cfg.seed));
    driver.start();
    net.run();

    // Narrate the consensus timeline from the typed trace: the kill, each
    // election, and each leader change, with simulated timestamps.
    std::cout << "\nConsensus timeline:\n";
    TimePoint killed_at{};
    TimePoint elected_at{};
    for (const obs::TraceEvent& e : trace.events()) {
        const double t = e.at.as_seconds();
        if (e.type == obs::EventType::kFault &&
            e.value == static_cast<std::uint64_t>(fault::FaultKind::kRaftLeaderKill)) {
            killed_at = e.at;
            std::cout << "  t=" << harness::fmt(t) << "s  leader (node "
                      << e.value2 << ") killed\n";
        } else if (e.type == obs::EventType::kRaftElection) {
            std::cout << "  t=" << harness::fmt(t) << "s  node " << e.actor
                      << " started an election for term " << e.value << "\n";
        } else if (e.type == obs::EventType::kRaftLeaderElected) {
            if (elected_at == TimePoint{} && killed_at != TimePoint{}) {
                elected_at = e.at;
            }
            std::cout << "  t=" << harness::fmt(t) << "s  node " << e.actor
                      << " won term " << e.value << " (leader change #"
                      << e.value2 << ")\n";
        }
    }

    const raft::RaftOrderingBackend& raft = *net.raft_backend();
    std::cout << "\nRe-election latency after the kill: "
              << harness::fmt((elected_at - killed_at).as_seconds() * 1e3)
              << " ms (seeded timeout in [150, 300) ms + one vote round)\n";
    std::cout << "Cluster: term " << raft.current_term() << ", "
              << raft.elections_started() << " election(s), "
              << raft.leader_changes() << " leader change(s), "
              << raft.leader_resubmissions()
              << " in-flight submissions re-proposed by the new leader, "
              << raft.duplicate_commits_skipped() << " duplicate commits skipped\n";
    std::cout << "Committed: " << metrics.committed_valid() << " valid, "
              << metrics.committed_invalid() << " invalid, "
              << metrics.client_failures() << " client-side failures\n";

    // The failover invariants (also asserted by tests/raft/raft_chaos_test.cpp
    // and gated in CI by bench/ablation_raft).
    const bool log_ok = raft.committed_prefixes_consistent();
    const bool blocks_ok = net.osn_blocks_identical();
    const bool chains_ok = net.chains_identical() && net.states_identical();
    bool verified = true;
    for (const auto& peer : net.peers()) {
        verified = verified && peer->chain().verify_chain();
    }
    std::cout << "\nRaft log matching over the committed prefix: "
              << (log_ok ? "OK" : "FAILED") << "\n";
    std::cout << "Block-sequence identity across all 3 OSNs: "
              << (blocks_ok ? "OK" : "FAILED") << "\n";
    std::cout << "Peer chains & states converged and hash-verified: "
              << (chains_ok && verified ? "OK" : "FAILED") << "\n";
    const bool failover_exercised = raft.leader_changes() >= 1;
    return log_ok && blocks_ok && chains_ok && verified && failover_exercised ? 0
                                                                              : 1;
}
