// OSN crash and recovery with Kafka-style log replay (DESIGN.md §11).
//
// One ordering-service node crashes mid-run and restarts a second and a
// half later.  Because the broker topics are durable, totally-ordered
// append logs, the recovering OSN resubscribes from offset 0, replays the
// whole log through the same Multi-Queue Block Generator, and rebuilds a
// block sequence that is hash-identical to the chain it cut before the
// crash and to what the surviving OSNs produced in the meantime — the
// determinism the TTC protocol guarantees (paper §3.3) extends to recovery.
//
//   $ ./build/examples/osn_crash_recovery
#include <iostream>

#include "core/fabric_network.h"
#include "harness/report.h"
#include "harness/workload.h"

int main() {
    using namespace fl;

    harness::print_banner(std::cout, "OSN crash and recovery",
                          "OSN 1 crashes at t=2s, restarts at t=3.5s, replays the "
                          "broker log");

    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = 7;
    cfg.channel.priority_enabled = true;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("2:3:1");
    cfg.channel.block_size = 50;
    cfg.channel.block_timeout = Duration::millis(200);

    // Client-side retry so transactions broadcast at the dead OSN get
    // resubmitted instead of silently vanishing.
    cfg.client_params.retry.enabled = true;
    cfg.client_params.retry.commit_timeout = Duration::seconds(3);

    // The fault plan: crash OSN 1 at 2 s, bring it back at 3.5 s.
    cfg.faults.schedule = {
        {Duration::seconds(2), fault::FaultKind::kOsnCrash, 1},
        {Duration::from_seconds(3.5), fault::FaultKind::kOsnRestart, 1},
    };

    core::FabricNetwork net(cfg);
    core::MetricsCollector metrics;
    net.set_tx_sink([&metrics](const client::TxRecord& r) { metrics.record(r); });

    harness::Workload workload;
    for (std::size_t c = 0; c < 3; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = 80.0;
        load.generate = harness::priority_class_mix({1, 2, 1});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(1'200);  // ~5 s of load, spanning the outage
    harness::WorkloadDriver driver(net, std::move(workload), Rng(cfg.seed));
    driver.start();
    net.run();

    const auto& osn = *net.osns()[1];
    std::cout << "\nOSN 1: " << osn.crashes() << " crash, " << osn.restarts()
              << " restart, " << osn.dropped_broadcasts()
              << " broadcasts dropped while down\n";
    std::cout << "Client retries: " << metrics.resubmissions_total()
              << " resubmissions, " << metrics.commit_timeout_failures()
              << " commit-timeout failures\n";
    std::cout << "Committed: " << metrics.committed_valid() << " valid, "
              << metrics.committed_invalid() << " invalid, "
              << metrics.client_failures() << " client-side failures\n";

    // The recovery invariants (also asserted by tests/fault/chaos_test.cpp).
    const bool identical = net.osn_blocks_identical();
    const bool chains_ok = net.chains_identical() && net.states_identical();
    std::cout << "\nBlock-sequence identity across all 3 OSNs after replay: "
              << (identical ? "OK" : "FAILED") << "\n";
    std::cout << "Replay hash mismatches: " << osn.replay_hash_mismatches()
              << "\n";
    std::cout << "Peer chains & states converged: " << (chains_ok ? "OK" : "FAILED")
              << "\n";
    return identical && chains_ok && osn.replay_hash_mismatches() == 0 ? 0 : 1;
}
