// Online reconfiguration of the block formation policy (paper §3.3).
//
// The paper motivates changing the policy during channel operation — "the
// system designer realizes that the block formation policy defined at the
// beginning is not the best policy for the system" — but left it out of the
// prototype.  This example implements the scenario end to end: a channel
// starts with an equal-shares policy, high-priority latency degrades under
// load, the operator submits a channel configuration transaction, and every
// OSN switches to the new policy at the same block boundary.
//
//   $ ./build/examples/policy_reconfiguration
#include <iostream>

#include "core/fabric_network.h"
#include "harness/report.h"
#include "harness/workload.h"

int main() {
    using namespace fl;

    harness::print_banner(std::cout,
                          "Online block-formation-policy reconfiguration",
                          "mismatched 3:1:1 corrected to 1:2:1 at t=15s under load");

    core::NetworkConfig cfg;
    cfg.orgs = 4;
    cfg.osns = 3;
    cfg.clients = 3;
    cfg.seed = 99;
    cfg.channel.priority_enabled = true;
    cfg.channel.block_policy = policy::BlockFormationPolicy::parse("3:1:1");
    cfg.channel.block_size = 500;
    cfg.channel.block_timeout = Duration::seconds(1);

    core::FabricNetwork net(cfg);

    // Bucket completions into before/after the reconfiguration.
    const double switch_at_s = 15.0;
    core::MetricsCollector before;
    core::MetricsCollector after;
    net.set_tx_sink([&](const client::TxRecord& r) {
        (r.submitted_at.as_seconds() < switch_at_s ? before : after).record(r);
    });

    // Offered load: 480 tps (within capacity), arrival mix 1:2:1.
    harness::Workload workload;
    for (std::size_t c = 0; c < 3; ++c) {
        harness::LoadSpec load;
        load.client_index = c;
        load.tps = 160.0;
        load.generate = harness::priority_class_mix({1, 2, 1});
        workload.loads.push_back(std::move(load));
    }
    workload.distribute_total(14'500);  // ~30 s of load
    harness::WorkloadDriver driver(net, std::move(workload), Rng(3));
    driver.start();

    net.simulator().schedule_after(Duration::from_seconds(switch_at_s), [&net] {
        std::cout << "t=15s: submitting channel config update -> policy 1:2:1\n";
        net.update_block_policy(policy::BlockFormationPolicy::parse("1:2:1"));
    });

    net.run();

    harness::Table table({"phase", "policy", "high avg (s)", "medium avg (s)",
                          "low avg (s)"});
    table.add_row({"before switch", "3:1:1",
                   harness::fmt(before.avg_latency_for_priority(0), 2),
                   harness::fmt(before.avg_latency_for_priority(1), 2),
                   harness::fmt(before.avg_latency_for_priority(2), 2)});
    table.add_row({"after switch", "1:2:1",
                   harness::fmt(after.avg_latency_for_priority(0), 2),
                   harness::fmt(after.avg_latency_for_priority(1), 2),
                   harness::fmt(after.avg_latency_for_priority(2), 2)});
    table.print(std::cout);

    bool switched = true;
    for (const auto& osn : net.osns()) {
        switched = switched && osn->generator() != nullptr &&
                   osn->generator()->config_updates_applied() == 1;
    }
    const bool consistent = net.osn_blocks_identical() && net.chains_identical();
    std::cout << "\nall OSNs applied the update at the same boundary: "
              << (switched ? "yes" : "NO") << "\nconsistency: "
              << (consistent ? "ok" : "VIOLATED") << "\n";
    std::cout << "(the initial 3:1:1 policy reserves 60% of each block for a class "
                 "carrying only\n 25% of the traffic, starving medium/low; after the "
                 "operator matches the policy\n to the 1:2:1 arrival mix, the backlog "
                 "drains and all classes recover.)\n";
    return switched && consistent ? 0 : 1;
}
